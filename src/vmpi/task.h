// Coroutine task types for the virtual-MPI runtime.
//
// Rank programs are written as ordinary sequential coroutines that co_await
// communication and time; the discrete-event engine advances virtual time
// between resumptions.  Two task kinds:
//   * Task<T>  — a lazy async function with a typed result, awaited by
//     another coroutine (continuation via symmetric transfer);
//   * RankTask — a top-level coroutine owned by the Engine (a rank's main).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace mlcr::vmpi {

namespace detail {

/// Final awaitable that resumes the awaiting coroutine (if any).
struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> handle) noexcept {
    auto continuation = handle.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

}  // namespace detail

/// Lazy, single-awaiter async task with a typed result.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::optional<T> value;
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;  // start the task (symmetric transfer)
  }
  T await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
    return std::move(*handle_.promise().value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  std::coroutine_handle<promise_type> handle_;
};

/// void specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  std::coroutine_handle<promise_type> handle_;
};

/// Top-level coroutine for a rank's main program.  Owned by the Engine;
/// suspends at the final point so the engine can observe done() and destroy
/// the frame.
class RankTask {
 public:
  struct promise_type {
    std::exception_ptr exception;

    RankTask get_return_object() {
      return RankTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  RankTask(RankTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  RankTask(const RankTask&) = delete;
  RankTask& operator=(const RankTask&) = delete;
  RankTask& operator=(RankTask&&) = delete;
  ~RankTask() {
    if (handle_) handle_.destroy();
  }

  [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept {
    return handle_;
  }
  /// Transfers frame ownership to the caller (used by Engine::spawn).
  [[nodiscard]] std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  explicit RankTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace mlcr::vmpi
