#include "vmpi/comm.h"

#include <cmath>

#include "common/error.h"

namespace mlcr::vmpi {

double NetworkModel::collective_time(int n, std::size_t bytes) const {
  if (n <= 1) return latency;
  const double hops = std::ceil(std::log2(static_cast<double>(n)));
  return hops * transfer_time(bytes);
}

Comm::Comm(Engine& engine, int size, NetworkModel network)
    : engine_(engine), size_(size), network_(network) {
  MLCR_EXPECT(size_ >= 1, "Comm: size must be >= 1");
}

Comm::Key Comm::key(int from, int to, int tag) noexcept {
  return (static_cast<Key>(static_cast<std::uint32_t>(from)) << 40) ^
         (static_cast<Key>(static_cast<std::uint32_t>(to)) << 16) ^
         static_cast<Key>(static_cast<std::uint16_t>(tag));
}

void Comm::check_rank(int rank) const {
  MLCR_EXPECT(rank >= 0 && rank < size_, "Comm: rank out of range");
}

void Comm::complete_transfer(PendingSend send, PendingRecv recv) {
  const double wire = network_.transfer_time(send.data.size());
  if (recv.slot != nullptr) {
    *recv.slot = std::move(send.data);
    engine_.schedule(wire, recv.handle);
  } else {
    // Nonblocking receiver: deliver into the request when the wire time
    // has elapsed.
    auto request = recv.request;
    auto payload = std::make_shared<Bytes>(std::move(send.data));
    engine_.call_later(wire, [request, payload]() {
      request->data = std::move(*payload);
      request->complete();
    });
  }
  // Send side: blocking sender resumes, nonblocking sender completes its
  // request; eager buffered sends (neither) already returned.
  if (send.handle) {
    engine_.schedule(wire, send.handle);
  } else if (send.request) {
    auto request = send.request;
    engine_.call_later(wire, [request]() { request->complete(); });
  }
}

void Comm::collective_arrive(Collective& c, std::coroutine_handle<> handle,
                             std::size_t wire_bytes) {
  c.waiters.push_back(handle);
  ++c.arrived;
  if (c.arrived < size_) return;
  // Last arriver releases everyone after the tree traversal time.
  const double cost = network_.collective_time(size_, wire_bytes);
  for (std::size_t i = 0; i < c.waiters.size(); ++i) {
    if (i < c.result_slots.size() && c.result_slots[i].second != nullptr) {
      // Rooted reductions deliver the sum only to the root.
      if (c.root < 0 || c.result_slots[i].first == c.root) {
        *c.result_slots[i].second = c.sum;
      }
    }
    if (i < c.payload_slots.size() && c.payload_slots[i] != nullptr) {
      *c.payload_slots[i] = c.payload;
    }
    engine_.schedule(cost, c.waiters[i]);
  }
  c = Collective{};  // reset for the next generation
}

void SendAwaiter::await_suspend(std::coroutine_handle<> handle) {
  comm.check_rank(from);
  comm.check_rank(to);
  const auto k = Comm::key(from, to, tag);
  auto& recv_queue = comm.recvs_[k];
  if (!recv_queue.empty()) {
    Comm::PendingRecv recv = std::move(recv_queue.front());
    recv_queue.pop_front();
    comm.complete_transfer(Comm::PendingSend{std::move(data), handle, {}},
                           std::move(recv));
    return;
  }
  if (data.size() <= comm.network_.eager_limit) {
    // Eager path: buffer the payload and let the sender continue after the
    // wire time; the matching recv completes whenever it is posted.
    const double wire = comm.network_.transfer_time(data.size());
    comm.sends_[k].push_back(Comm::PendingSend{std::move(data), nullptr, {}});
    comm.engine_.schedule(wire, handle);
    return;
  }
  comm.sends_[k].push_back(Comm::PendingSend{std::move(data), handle, {}});
}

void RecvAwaiter::await_suspend(std::coroutine_handle<> handle) {
  comm.check_rank(at);
  comm.check_rank(from);
  const auto k = Comm::key(from, at, tag);
  auto& send_queue = comm.sends_[k];
  if (!send_queue.empty()) {
    Comm::PendingSend send = std::move(send_queue.front());
    send_queue.pop_front();
    comm.complete_transfer(std::move(send),
                           Comm::PendingRecv{&received, handle, {}});
    return;
  }
  comm.recvs_[k].push_back(Comm::PendingRecv{&received, handle, {}});
}

Request Comm::isend(int from, int to, int tag, Bytes data) {
  check_rank(from);
  check_rank(to);
  auto state = std::make_shared<RequestState>();
  state->engine = &engine_;
  const auto k = key(from, to, tag);
  auto& recv_queue = recvs_[k];
  if (!recv_queue.empty()) {
    PendingRecv recv = std::move(recv_queue.front());
    recv_queue.pop_front();
    complete_transfer(PendingSend{std::move(data), nullptr, state},
                      std::move(recv));
  } else {
    // Buffered like an eager send regardless of size: the request is the
    // completion signal, there is no coroutine to block.
    const double wire = network_.transfer_time(data.size());
    sends_[k].push_back(PendingSend{std::move(data), nullptr, {}});
    engine_.call_later(wire, [state]() { state->complete(); });
  }
  return Request(state);
}

Request Comm::irecv(int at, int from, int tag) {
  check_rank(at);
  check_rank(from);
  auto state = std::make_shared<RequestState>();
  state->engine = &engine_;
  const auto k = key(from, at, tag);
  auto& send_queue = sends_[k];
  if (!send_queue.empty()) {
    PendingSend send = std::move(send_queue.front());
    send_queue.pop_front();
    complete_transfer(std::move(send), PendingRecv{nullptr, nullptr, state});
  } else {
    recvs_[k].push_back(PendingRecv{nullptr, nullptr, state});
  }
  return Request(state);
}

void BarrierAwaiter::await_suspend(std::coroutine_handle<> handle) {
  comm.check_rank(rank);
  comm.collective_arrive(comm.barrier_state_, handle, /*wire_bytes=*/8);
}

void AllreduceAwaiter::await_suspend(std::coroutine_handle<> handle) {
  comm.check_rank(rank);
  auto& c = comm.allreduce_state_;
  c.sum += value;
  c.result_slots.emplace_back(rank, &result);
  comm.collective_arrive(c, handle, /*wire_bytes=*/8);
}

void ReduceAwaiter::await_suspend(std::coroutine_handle<> handle) {
  comm.check_rank(rank);
  comm.check_rank(root);
  auto& c = comm.reduce_state_;
  c.sum += value;
  c.root = root;
  c.result_slots.emplace_back(rank, &result);
  comm.collective_arrive(c, handle, /*wire_bytes=*/8);
}

void GatherAwaiter::await_suspend(std::coroutine_handle<> handle) {
  comm.check_rank(rank);
  comm.check_rank(root);
  auto& c = comm.gather_state_;
  c.root = root;
  c.contributions[rank] = std::move(data);
  c.slots.emplace_back(rank, &received);
  c.waiters.push_back(handle);
  if (++c.arrived < comm.size_) return;

  // Release: the root pays for receiving all contributions.
  std::size_t total_bytes = 0;
  for (const auto& [r, payload] : c.contributions) {
    total_bytes += payload.size();
  }
  const double cost =
      comm.network_.collective_time(comm.size_, 8) +
      static_cast<double>(total_bytes) / comm.network_.bandwidth;
  std::vector<Bytes> ordered;
  ordered.reserve(c.contributions.size());
  for (auto& [r, payload] : c.contributions) {
    ordered.push_back(std::move(payload));  // std::map: ascending rank order
  }
  for (auto& [r, slot] : c.slots) {
    if (r == c.root) *slot = ordered;
  }
  for (auto waiter : c.waiters) comm.engine_.schedule(cost, waiter);
  c = Comm::GatherCollective{};
}

void BcastAwaiter::await_suspend(std::coroutine_handle<> handle) {
  comm.check_rank(rank);
  comm.check_rank(root);
  auto& c = comm.bcast_state_;
  if (rank == root) c.payload = std::move(data);
  c.payload_slots.push_back(&received);
  const std::size_t bytes = c.payload.empty() ? 64 : c.payload.size();
  comm.collective_arrive(c, handle, bytes);
}

}  // namespace mlcr::vmpi
