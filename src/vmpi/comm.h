// Virtual-MPI communicator: point-to-point rendezvous messaging and the
// collectives the paper's Heat Distribution program uses (Bcast, Barrier,
// Allreduce), all with a latency/bandwidth cost model.
//
// Every operation is an awaitable used from rank coroutines:
//   co_await comm.send(me, dst, tag, bytes);
//   auto data = co_await comm.recv(me, src, tag);
//   double sum = co_await comm.allreduce_sum(me, local);
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "vmpi/engine.h"

namespace mlcr::vmpi {

using Bytes = std::vector<std::uint8_t>;

/// Shared completion state of a nonblocking operation.
struct RequestState {
  Engine* engine = nullptr;
  bool done = false;
  Bytes data;  ///< irecv payload once completed
  std::coroutine_handle<> waiter;

  void complete() {
    done = true;
    if (waiter) {
      engine->schedule(0.0, waiter);
      waiter = nullptr;
    }
  }
};

/// Handle of a nonblocking operation (MPI_Request analogue).  Await its
/// completion with Comm::wait; for irecv, take() moves the payload out.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool done() const noexcept { return state_ && state_->done; }
  [[nodiscard]] Bytes take() { return std::move(state_->data); }
  [[nodiscard]] const std::shared_ptr<RequestState>& state() const noexcept {
    return state_;
  }

 private:
  std::shared_ptr<RequestState> state_;
};

/// Link cost model: transfer(bytes) = latency + bytes / bandwidth.
struct NetworkModel {
  double latency = 2e-6;     ///< seconds per message
  double bandwidth = 5e9;    ///< bytes per second per link
  /// Messages up to this size are sent eagerly (buffered): the sender
  /// completes after the wire time without waiting for the receiver, like
  /// small-message MPI_Send.  Larger messages use rendezvous.
  std::size_t eager_limit = 64 * 1024;

  [[nodiscard]] double transfer_time(std::size_t bytes) const noexcept {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
  /// Tree-based collective over n ranks moving `bytes` per hop.
  [[nodiscard]] double collective_time(int n, std::size_t bytes) const;
};

class Comm {
 public:
  Comm(Engine& engine, int size, NetworkModel network = {});

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const NetworkModel& network() const noexcept {
    return network_;
  }

  /// Point-to-point: rendezvous semantics — both sides complete one
  /// transfer-time after the match.
  [[nodiscard]] auto send(int from, int to, int tag, Bytes data);
  [[nodiscard]] auto recv(int at, int from, int tag);

  /// Nonblocking variants (MPI_Isend/Irecv): return immediately; await the
  /// Request with wait().  waitall == sequential waits (identical virtual
  /// completion time, since waits don't consume time themselves).
  [[nodiscard]] Request isend(int from, int to, int tag, Bytes data);
  [[nodiscard]] Request irecv(int at, int from, int tag);
  [[nodiscard]] auto wait(Request& request);

  /// Barrier over all ranks.
  [[nodiscard]] auto barrier(int rank);

  /// Allreduce (sum) of one double over all ranks.
  [[nodiscard]] auto allreduce_sum(int rank, double value);

  /// Broadcast from `root`; the root passes the payload, everyone receives
  /// a copy after the collective completes.
  [[nodiscard]] auto bcast(int rank, int root, Bytes data);

  /// Reduce (sum) toward `root`: only the root's awaited value carries the
  /// global sum; other ranks receive 0.
  [[nodiscard]] auto reduce_sum(int rank, int root, double value);

  /// Gather: every rank contributes a payload; the root receives them
  /// ordered by rank, the others receive an empty vector.
  [[nodiscard]] auto gather(int rank, int root, Bytes data);

 private:
  friend struct SendAwaiter;
  friend struct RecvAwaiter;
  friend struct BarrierAwaiter;
  friend struct AllreduceAwaiter;
  friend struct BcastAwaiter;
  friend struct ReduceAwaiter;
  friend struct GatherAwaiter;

  struct PendingSend {
    Bytes data;
    std::coroutine_handle<> handle;          // blocking sender, or
    std::shared_ptr<RequestState> request;   // nonblocking sender (or null)
  };
  struct PendingRecv {
    Bytes* slot;                             // blocking receiver target
    std::coroutine_handle<> handle;
    std::shared_ptr<RequestState> request;   // nonblocking receiver
  };
  struct Collective {
    int arrived = 0;
    double sum = 0.0;
    int root = -1;  ///< -1: deliver the sum to everyone (allreduce)
    Bytes payload;
    std::vector<std::coroutine_handle<>> waiters;
    std::vector<std::pair<int, double*>> result_slots;  // (rank, out)
    std::vector<Bytes*> payload_slots;
  };
  struct GatherCollective {
    int arrived = 0;
    int root = 0;
    std::map<int, Bytes> contributions;
    std::vector<std::coroutine_handle<>> waiters;
    std::vector<std::pair<int, std::vector<Bytes>*>> slots;  // (rank, out)
  };

  using Key = std::uint64_t;  // (from, to, tag) packed
  [[nodiscard]] static Key key(int from, int to, int tag) noexcept;
  void check_rank(int rank) const;

  /// Completes a matched transfer: resumes both ends after the wire time.
  void complete_transfer(PendingSend send, PendingRecv recv);

  /// Collective arrival; releases everyone when the last rank arrives.
  void collective_arrive(Collective& c, std::coroutine_handle<> handle,
                         std::size_t wire_bytes);

  Engine& engine_;
  int size_;
  NetworkModel network_;
  std::map<Key, std::deque<PendingSend>> sends_;
  std::map<Key, std::deque<PendingRecv>> recvs_;
  Collective barrier_state_;
  Collective allreduce_state_;
  Collective bcast_state_;
  Collective reduce_state_;
  GatherCollective gather_state_;
};

// ---- awaitable definitions (header-only: they capture Comm&) ----

struct SendAwaiter {
  Comm& comm;
  int from, to, tag;
  Bytes data;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  void await_resume() const noexcept {}
};

struct RecvAwaiter {
  Comm& comm;
  int at, from, tag;
  Bytes received;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  Bytes await_resume() noexcept { return std::move(received); }
};

struct BarrierAwaiter {
  Comm& comm;
  int rank;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  void await_resume() const noexcept {}
};

struct AllreduceAwaiter {
  Comm& comm;
  int rank;
  double value;
  double result = 0.0;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  double await_resume() const noexcept { return result; }
};

struct BcastAwaiter {
  Comm& comm;
  int rank, root;
  Bytes data;
  Bytes received;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  Bytes await_resume() noexcept { return std::move(received); }
};

struct ReduceAwaiter {
  Comm& comm;
  int rank, root;
  double value;
  double result = 0.0;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  double await_resume() const noexcept { return result; }
};

struct GatherAwaiter {
  Comm& comm;
  int rank, root;
  Bytes data;
  std::vector<Bytes> received;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  std::vector<Bytes> await_resume() noexcept { return std::move(received); }
};

struct RequestWaitAwaiter {
  std::shared_ptr<RequestState> state;
  bool await_ready() const noexcept { return state->done; }
  void await_suspend(std::coroutine_handle<> handle) {
    state->waiter = handle;
  }
  void await_resume() const noexcept {}
};

inline auto Comm::send(int from, int to, int tag, Bytes data) {
  return SendAwaiter{*this, from, to, tag, std::move(data)};
}
inline auto Comm::recv(int at, int from, int tag) {
  return RecvAwaiter{*this, at, from, tag, {}};
}
inline auto Comm::barrier(int rank) { return BarrierAwaiter{*this, rank}; }
inline auto Comm::allreduce_sum(int rank, double value) {
  return AllreduceAwaiter{*this, rank, value};
}
inline auto Comm::bcast(int rank, int root, Bytes data) {
  return BcastAwaiter{*this, rank, root, std::move(data), {}};
}
inline auto Comm::reduce_sum(int rank, int root, double value) {
  return ReduceAwaiter{*this, rank, root, value};
}
inline auto Comm::gather(int rank, int root, Bytes data) {
  return GatherAwaiter{*this, rank, root, std::move(data), {}};
}
inline auto Comm::wait(Request& request) {
  return RequestWaitAwaiter{request.state()};
}

}  // namespace mlcr::vmpi
