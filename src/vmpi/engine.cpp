#include "vmpi/engine.h"

#include "common/error.h"

namespace mlcr::vmpi {

Engine::~Engine() {
  for (auto handle : tasks_) {
    if (handle) handle.destroy();
  }
}

void Engine::schedule(double delay, std::coroutine_handle<> handle) {
  MLCR_EXPECT(delay >= 0.0, "Engine: cannot schedule into the past");
  queue_.push(Event{now_ + delay, next_seq_++, handle, {}});
}

void Engine::call_later(double delay, std::function<void()> callback) {
  MLCR_EXPECT(delay >= 0.0, "Engine: cannot schedule into the past");
  queue_.push(Event{now_ + delay, next_seq_++, {}, std::move(callback)});
}

void Engine::spawn(RankTask task) {
  auto handle = task.release();
  MLCR_EXPECT(handle, "Engine: spawn of empty task");
  tasks_.push_back(handle);
  schedule(0.0, handle);  // initial_suspend is suspend_always
}

std::size_t Engine::unfinished_tasks() const {
  std::size_t unfinished = 0;
  for (auto handle : tasks_) {
    if (handle && !handle.done()) ++unfinished;
  }
  return unfinished;
}

void Engine::run() {
  started_ = true;
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    MLCR_EXPECT(event.at >= now_ - 1e-9, "Engine: time went backwards");
    now_ = std::max(now_, event.at);
    if (event.handle) {
      event.handle.resume();
    } else if (event.callback) {
      event.callback();
    }
  }
  // Surface rank failures (checked once at quiescence: an exception kills
  // its rank, which either ends the run or deadlocks its communicator).
  for (auto handle : tasks_) {
    if (handle && handle.done() && handle.promise().exception) {
      std::rethrow_exception(handle.promise().exception);
    }
  }
  if (unfinished_tasks() > 0) {
    common::fail("Engine: deadlock — " + std::to_string(unfinished_tasks()) +
                 " task(s) blocked with no pending events");
  }
}

}  // namespace mlcr::vmpi
