// Discrete-event engine: a virtual clock plus a queue of scheduled
// coroutine resumptions.  Rank coroutines never block the host thread; they
// suspend on awaitables that re-schedule them at a later virtual time (or
// when a communication partner arrives).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "vmpi/task.h"

namespace mlcr::vmpi {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time (seconds).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedules `handle` to resume `delay` seconds from now.  delay >= 0.
  void schedule(double delay, std::coroutine_handle<> handle);

  /// Schedules a plain callback (used by nonblocking-operation completions
  /// that have no coroutine to resume).
  void call_later(double delay, std::function<void()> callback);

  /// Registers a top-level rank coroutine; it starts when run() begins.
  void spawn(RankTask task);

  /// Awaitable: suspends the caller for `seconds` of virtual time.
  [[nodiscard]] auto sleep(double seconds) {
    struct Awaiter {
      Engine& engine;
      double seconds;
      bool await_ready() const noexcept { return seconds <= 0.0; }
      void await_suspend(std::coroutine_handle<> handle) {
        engine.schedule(seconds, handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, seconds};
  }

  /// Runs until every spawned task completes.  Throws common::Error on
  /// deadlock (no runnable event but unfinished tasks) and rethrows the
  /// first exception escaping a rank coroutine.
  void run();

  /// Number of spawned tasks that have not finished yet.
  [[nodiscard]] std::size_t unfinished_tasks() const;

 private:
  struct Event {
    double at;
    std::uint64_t seq;  // FIFO among simultaneous events
    std::coroutine_handle<> handle;
    std::function<void()> callback;  // used when handle is null
    bool operator>(const Event& other) const noexcept {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<RankTask::promise_type>> tasks_;
  bool started_ = false;
};

}  // namespace mlcr::vmpi
