// The validation twin of plan_request.h: a SimRequest asks "solve this
// planning problem, then fault-inject the resulting plan N times and compare
// the simulated means against the analytic model" — the paper's Figure 4
// experiment as a service-layer request.
//
// `canonical_key` renders every result-influencing field (the embedded
// planning problem plus runs / seed / sim options) into an exact hex-float
// string so validate_one can memoize in an LRU cache.  Two fields are
// deliberately excluded: `label` (an echo tag, as in PlanRequest) and
// `monte_carlo.threads` — the replica fan-out is bit-identical for every
// thread count (see sim/monte_carlo.h), so parallelism must never split the
// cache.
//
// A SimReport carries the underlying PlanReport, the per-metric replica
// summaries (flattened to plain doubles so they cross the wire exactly),
// and the Fig-4-style plan-vs-simulated errors.  All errors are relative to
// the analytic E(T_w): portion_errors.X = (sim_mean_X - analytic_X) /
// analytic_wallclock, which stays well-defined even for portions whose
// analytic share is exactly zero.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "model/system.h"
#include "model/wallclock.h"
#include "opt/algorithm1.h"
#include "opt/planner.h"
#include "sim/monte_carlo.h"
#include "stat/summary.h"
#include "svc/plan_request.h"

namespace mlcr::svc {

/// Which validation engine runs the replicas (DESIGN.md §14): the coarse
/// closed-form kernel or the rank-level DES replay.  Result-influencing, so
/// it is part of the cache key (appended only for non-default backends to
/// keep pre-existing coarse keys byte-identical) and echoed on the report.
enum class SimBackend {
  kCoarse = 0,  ///< sim::coarse_backend() — the paper's Section IV-A kernel
  kDes = 1,     ///< sim::des_backend() — vmpi/cluster/fti checkpoint replay
};

[[nodiscard]] const char* to_string(SimBackend backend) noexcept;

/// Parses the wire spelling ("coarse" / "des"); nullopt for anything else —
/// callers turn that into a structured bad_request naming the accepted
/// values rather than guessing.
[[nodiscard]] std::optional<SimBackend> backend_from_string(
    std::string_view name) noexcept;

struct SimRequest {
  model::SystemConfig config;
  opt::Solution solution = opt::Solution::kMultilevelOptScale;
  /// Solver options for the plan being validated.
  opt::Algorithm1Options plan_options;
  /// Replica count, RNG seed, fan-out width, and simulator semantics.
  sim::MonteCarloOptions monte_carlo;
  /// Validation engine for the replicas; part of the cache key.
  SimBackend backend = SimBackend::kCoarse;
  /// Free-form tag echoed into the report; NOT part of the cache key.
  std::string label;

  /// The planning half of this request, for SweepEngine::plan_one.
  [[nodiscard]] PlanRequest plan_request() const {
    return {config, solution, plan_options, label};
  }
};

/// stat::Summary flattened to plain members, so a report decoded from the
/// wire is field-for-field comparable to the in-process one.
struct SimSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] SimSummary flatten(const stat::Summary& summary);

struct SimReport {
  std::string label;
  /// Cache key of the originating request (useful for debugging sweeps).
  std::string key;

  /// kOk only when the plan solved AND every replica batch ran; a failed
  /// plan propagates its status with a "plan: " message prefix.
  opt::Status status = opt::Status::kInvalidConfig;
  std::string message;

  /// The plan that was simulated (including the analytic expectation the
  /// errors below compare against).
  PlanReport plan;

  /// Replica statistics per reported metric, paper Table/Figure order.
  SimSummary wallclock;
  SimSummary productive;
  SimSummary checkpoint;
  SimSummary restart;
  SimSummary rollback;
  SimSummary efficiency;
  SimSummary failures;

  int runs = 0;              ///< replicas requested
  long incomplete_runs = 0;  ///< replicas hitting the max_events guard
  /// The backend that produced the replica statistics (request echo).
  SimBackend backend = SimBackend::kCoarse;

  /// (simulated mean - analytic E(T_w)) / analytic E(T_w).
  double wallclock_error = 0.0;
  /// Per-portion (simulated mean - analytic) / analytic E(T_w).
  model::TimePortions portion_errors;

  /// Wall time of plan + simulation for this request, seconds.  Reports
  /// served from cache keep the original value.
  double sim_seconds = 0.0;
  bool cache_hit = false;

  [[nodiscard]] bool ok() const noexcept { return status == opt::Status::kOk; }
};

/// Canonical memoization key: the PlanRequest key plus every
/// result-influencing Monte-Carlo field (label and threads excluded).
[[nodiscard]] std::string canonical_key(const SimRequest& request);

}  // namespace mlcr::svc
