// Validating builder for model::SystemConfig — the front door of the
// PlanRequest API.  Unlike constructing SystemConfig directly (where a bad
// parameter surfaces as a deep MLCR_EXPECT failure with a file:line message),
// the builder checks every field up front and throws common::Error messages
// that name the offending field and value, e.g.
//   "SystemConfigBuilder: failure_rates[2] must be positive (got -8)".
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "model/overhead.h"
#include "model/speedup.h"
#include "model/system.h"

namespace mlcr::svc {

class SystemConfigBuilder {
 public:
  SystemConfigBuilder() = default;

  /// Single-core productive time Te.  Exactly one of the two setters.
  SystemConfigBuilder& te_seconds(double seconds);
  SystemConfigBuilder& te_core_days(double core_days);

  /// Speedup curve; the quadratic shorthand is the paper's Formula (12).
  SystemConfigBuilder& quadratic_speedup(double kappa, double n_star);
  SystemConfigBuilder& speedup(std::unique_ptr<model::Speedup> curve);

  /// Appends one checkpoint level (level 1 first, PFS last).
  SystemConfigBuilder& add_level(model::Overhead checkpoint,
                                 model::Overhead recovery);
  /// Replaces all levels at once.
  SystemConfigBuilder& levels(std::vector<model::LevelOverheads> levels);

  /// Per-level failure rates (events/day observed at `baseline_scale`);
  /// real rates scale as (N / baseline)^exponent.
  SystemConfigBuilder& failure_rates_per_day(std::vector<double> per_day,
                                             double baseline_scale,
                                             double exponent = 1.0);

  /// Resource (re)allocation period A, seconds.  Defaults to 0.
  SystemConfigBuilder& allocation_seconds(double seconds);

  /// Machine capacity (upper bound on N); 0 = capped by the speedup's
  /// ideal scale only.  Defaults to 0.
  SystemConfigBuilder& max_scale(double scale);

  /// Validates every field and constructs the config.  Throws
  /// common::Error naming the first offending field.
  [[nodiscard]] model::SystemConfig build() const;

 private:
  std::optional<double> te_seconds_;
  // Quadratic parameters are kept raw and validated in build() so a bad
  // N_star is reported by field name, not by a deep MLCR_EXPECT.
  std::optional<std::pair<double, double>> quadratic_;  // (kappa, N_star)
  std::shared_ptr<const model::Speedup> speedup_;  // shared: builder is copyable
  std::vector<model::LevelOverheads> levels_;
  std::optional<std::vector<double>> rates_per_day_;
  double rates_baseline_ = 0.0;
  double rates_exponent_ = 1.0;
  double allocation_seconds_ = 0.0;
  double max_scale_ = 0.0;
};

}  // namespace mlcr::svc
