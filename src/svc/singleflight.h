// Singleflight: coalesce concurrent requests for the same canonical key so
// a hot key costs one solve instead of N queued solves (DESIGN.md §12).
//
// The first caller to join() a key becomes the *leader* and owes the table
// a complete() or abort(); everyone else who joins before that happens is a
// *follower* whose callback is stored.  complete() pops the key and invokes
// every stored callback with the finished report; abort() invokes them with
// nullptr (the leader could not even start — e.g. the admission queue was
// full — and each waiter answers its own client accordingly).
//
// Callbacks run on the completer's thread, outside the table lock — in the
// serving core they only post a delivery task to the waiter's reactor, so
// keeping them out of the critical section prevents any lock ordering with
// reactor internals.  The table is sharded by key hash like the LRU cache,
// so two different hot keys never contend.
//
// Deadline interaction (the serving-core policy): once a request joins, it
// is answered when the solve lands, even if its own deadline has passed by
// then — by that point the report is a cache entry, and cache hits are
// always served (see plan_one's contract).  Deadlines are enforced at
// admission time, before join().
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mlcr::svc {

template <typename Report>
class Singleflight {
 public:
  /// Invoked exactly once per join(): with the finished report on
  /// complete(), with nullptr on abort().
  using Callback = std::function<void(const Report*)>;

  explicit Singleflight(std::size_t shards = 8) {
    if (shards == 0) shards = 1;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Registers interest in `key`.  True = caller is the leader and must
  /// solve, then call complete() (or abort() if it cannot start).
  [[nodiscard]] bool join(const std::string& key, Callback callback) {
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.inflight.try_emplace(key);
    it->second.push_back(std::move(callback));
    return inserted;
  }

  /// Leader delivered: pops the key and fires every waiter with `report`.
  /// Returns the number of callbacks fired (0 if the key was not in
  /// flight, which only happens if complete/abort raced — a logic error
  /// upstream, tolerated as a no-op).
  std::size_t complete(const std::string& key, const Report& report) {
    return finish(key, &report);
  }

  /// Leader never started: pops the key and fires every waiter with
  /// nullptr.
  std::size_t abort(const std::string& key) { return finish(key, nullptr); }

  /// Keys currently in flight (drain uses this to wait for quiescence).
  [[nodiscard]] std::size_t inflight() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->inflight.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::vector<Callback>> inflight;
  };

  Shard& shard_of(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::size_t finish(const std::string& key, const Report* report) {
    std::vector<Callback> waiters;
    {
      Shard& shard = shard_of(key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.inflight.find(key);
      if (it == shard.inflight.end()) return 0;
      waiters = std::move(it->second);
      shard.inflight.erase(it);
    }
    // Outside the lock: callbacks may post to reactors or touch metrics.
    for (const Callback& waiter : waiters) waiter(report);
    return waiters.size();
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mlcr::svc
