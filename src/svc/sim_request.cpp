#include "svc/sim_request.h"

#include <cstdio>

namespace mlcr::svc {

namespace {

/// Exact hex-float rendering: distinct doubles always produce distinct text
/// (same idiom as plan_request.cpp).
void append_hex(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  *out += buf;
}

}  // namespace

const char* to_string(SimBackend backend) noexcept {
  switch (backend) {
    case SimBackend::kDes: return "des";
    case SimBackend::kCoarse: break;
  }
  return "coarse";
}

std::optional<SimBackend> backend_from_string(std::string_view name) noexcept {
  if (name == "coarse") return SimBackend::kCoarse;
  if (name == "des") return SimBackend::kDes;
  return std::nullopt;
}

SimSummary flatten(const stat::Summary& summary) {
  SimSummary flat;
  flat.count = summary.count();
  flat.mean = summary.mean();
  flat.stddev = summary.stddev();
  flat.min = summary.min();
  flat.max = summary.max();
  return flat;
}

std::string canonical_key(const SimRequest& request) {
  std::string key = canonical_key(request.plan_request());
  key += "|mc.runs=" + std::to_string(request.monte_carlo.runs);
  key += "|mc.seed=" + std::to_string(request.monte_carlo.seed);
  const sim::SimOptions& sim = request.monte_carlo.sim;
  key += "|mc.jitter=";
  append_hex(&key, sim.jitter_ratio);
  key += "|mc.maxev=" + std::to_string(sim.max_events);
  key += "|mc.atomic=" + std::to_string(sim.atomic_checkpoints ? 1 : 0);
  key += "|mc.serrec=" + std::to_string(sim.serial_recovery ? 1 : 0);
  key += "|mc.wshape=";
  append_hex(&key, sim.weibull_shape);
  // Appended only for non-default backends: every coarse key predating the
  // backend axis stays byte-identical, so warm caches survive the upgrade.
  if (request.backend != SimBackend::kCoarse) {
    key += "|backend=";
    key += to_string(request.backend);
  }
  // monte_carlo.threads and label are intentionally absent: neither changes
  // the report (see file comment).
  return key;
}

}  // namespace mlcr::svc
