#include "svc/admission_queue.h"

#include <utility>

namespace mlcr::svc {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

bool AdmissionQueue::try_push(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || jobs_.size() >= capacity_) return false;
    jobs_.push_back(std::move(job));
  }
  ready_.notify_one();
  return true;
}

bool AdmissionQueue::pop(std::function<void()>* job) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return false;  // closed and drained
  *job = std::move(jobs_.front());
  jobs_.pop_front();
  return true;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace mlcr::svc
