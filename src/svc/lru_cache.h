// Least-recently-used map used by the sweep engine's plan cache.  Replaces
// the original drop-on-full behavior, which silently stopped memoizing the
// moment the cache filled: a long-lived planning service would degrade to
// solving every request from scratch while reporting a full, useless cache.
//
// Not internally synchronized — the owner serializes access (the sweep
// engine holds its cache mutex around every call).
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace mlcr::svc {

template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Copies the value for `key` into `*value` and promotes the entry to
  /// most-recently-used; false when absent (or capacity is zero).
  bool get(const Key& key, Value* value) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    *value = it->second->second;
    return true;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry when
  /// full.  Returns the number of evictions performed (0 or 1).
  std::size_t put(const Key& key, const Value& value) {
    if (capacity_ == 0) return 0;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = value;
      order_.splice(order_.begin(), order_, it->second);
      return 0;
    }
    std::size_t evicted = 0;
    if (order_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      evicted = 1;
    }
    order_.emplace_front(key, value);
    index_.emplace(key, order_.begin());
    return evicted;
  }

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear() {
    order_.clear();
    index_.clear();
  }

 private:
  std::size_t capacity_;
  /// Front = most recently used; back = eviction candidate.
  std::list<std::pair<Key, Value>> order_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
};

}  // namespace mlcr::svc
