#include "svc/sweep_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <future>
#include <map>
#include <utility>

#include "common/error.h"
#include "sim/backend.h"
#include "sim/event_sim.h"

namespace mlcr::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The sim::Backend implementing a request's backend axis.
const sim::Backend& backend_for(SimBackend backend) {
  return backend == SimBackend::kDes ? sim::des_backend()
                                     : sim::coarse_backend();
}

}  // namespace

std::pair<opt::Status, std::string> classify_failure(
    std::exception_ptr error) {
  try {
    std::rethrow_exception(std::move(error));
  } catch (const common::NumericError& e) {
    return {opt::Status::kDiverged, e.what()};
  } catch (const common::Error& e) {
    return {opt::Status::kInvalidConfig, e.what()};
  } catch (const std::exception& e) {
    return {opt::Status::kInternalError,
            std::string("unexpected: ") + e.what()};
  } catch (...) {
    return {opt::Status::kInternalError, "unexpected non-standard exception"};
  }
}

SweepEngine::SweepEngine(SweepEngineOptions options)
    : options_(options),
      pool_(options.threads),
      cache_(options.cache_capacity, options.cache_shards),
      sim_cache_(options.sim_cache_capacity, options.cache_shards) {
  metrics_.gauge("pool.threads").set(static_cast<double>(pool_.size()));
  metrics_.gauge("cache.capacity")
      .set(static_cast<double>(options_.cache_capacity));
  metrics_.gauge("validate.cache.capacity")
      .set(static_cast<double>(options_.sim_cache_capacity));
}

PlanReport SweepEngine::solve(const PlanRequest& request,
                              const std::string& key) {
  PlanReport report;
  report.label = request.label;
  report.solution = request.solution;
  report.key = key;
  const auto start = Clock::now();
  try {
    report.planned = opt::plan(request.solution, request.config,
                               request.options);
    report.status = report.planned.optimization.status;
    report.message = report.planned.optimization.message;
  } catch (...) {
    std::tie(report.status, report.message) =
        classify_failure(std::current_exception());
  }
  report.solve_seconds = seconds_since(start);

  metrics_.counter("status." + opt::to_string(report.status)).increment();
  metrics_.timer("solve.seconds").observe(report.solve_seconds);
  const int outer = report.planned.optimization.outer_iterations;
  if (outer > 0) {
    metrics_.timer("solve.outer_iterations")
        .observe(static_cast<double>(outer));
  }
  return report;
}

bool SweepEngine::cache_lookup(const std::string& key, PlanReport* report) {
  if (options_.cache_capacity == 0) return false;
  const bool hit = cache_.get(key, report);
  metrics_.counter(hit ? "cache.hits" : "cache.misses").increment();
  return hit;
}

std::size_t SweepEngine::cache_insert(const std::string& key,
                                      const PlanReport& report) {
  if (options_.cache_capacity == 0) return 0;
  const std::size_t evicted = cache_.put(key, report);
  metrics_.counter("cache.inserts").increment();
  if (evicted > 0) metrics_.counter("cache.evictions").increment(evicted);
  metrics_.gauge("cache.size").set(static_cast<double>(cache_.size()));
  return evicted;
}

bool SweepEngine::sim_cache_lookup(const std::string& key, SimReport* report) {
  if (options_.sim_cache_capacity == 0) return false;
  const bool hit = sim_cache_.get(key, report);
  metrics_.counter(hit ? "validate.cache.hits" : "validate.cache.misses")
      .increment();
  return hit;
}

std::size_t SweepEngine::sim_cache_insert(const std::string& key,
                                          const SimReport& report) {
  if (options_.sim_cache_capacity == 0) return 0;
  const std::size_t evicted = sim_cache_.put(key, report);
  metrics_.counter("validate.cache.inserts").increment();
  if (evicted > 0) {
    metrics_.counter("validate.cache.evictions").increment(evicted);
  }
  metrics_.gauge("validate.cache.size")
      .set(static_cast<double>(sim_cache_.size()));
  return evicted;
}

bool SweepEngine::try_cached_plan(const std::string& canonical_key,
                                  PlanReport* report) {
  return cache_lookup(canonical_key, report);
}

bool SweepEngine::try_cached_sim(const std::string& canonical_key,
                                 SimReport* report) {
  return sim_cache_lookup(canonical_key, report);
}

std::size_t SweepEngine::cache_size() const { return cache_.size(); }

std::size_t SweepEngine::sim_cache_size() const { return sim_cache_.size(); }

void SweepEngine::clear_cache() {
  cache_.clear();
  sim_cache_.clear();
}

std::optional<PlanReport> SweepEngine::plan_one(
    const PlanRequest& request, std::optional<Deadline> deadline) {
  const std::string key = canonical_key(request);
  metrics_.counter("requests").increment();
  PlanReport report;
  if (cache_lookup(key, &report)) {
    report.cache_hit = true;
    report.queue_wait_seconds = 0.0;
    report.label = request.label;
    return report;
  }
  if (deadline.has_value() && Clock::now() >= *deadline) {
    metrics_.counter("requests.expired").increment();
    return std::nullopt;
  }
  report = solve(request, key);
  cache_insert(key, report);
  return report;
}

std::vector<PlanReport> SweepEngine::plan_all_solutions(
    const model::SystemConfig& cfg, const opt::Algorithm1Options& options,
    SweepStats* stats) {
  std::vector<PlanRequest> requests;
  for (const auto solution : opt::all_solutions()) {
    requests.push_back({cfg, solution, options, opt::to_string(solution)});
  }
  return plan_sweep(requests, stats);
}

std::vector<PlanReport> SweepEngine::plan_sweep(
    const std::vector<PlanRequest>& requests, SweepStats* stats) {
  const auto sweep_start = Clock::now();
  const std::size_t n = requests.size();
  metrics_.counter("sweeps").increment();
  metrics_.counter("requests").increment(n);

  SweepStats local;
  local.requests = n;

  std::vector<PlanReport> reports(n);
  std::vector<std::string> keys(n);
  // Group request indices sharing a key: each unique key is solved at most
  // once per sweep, and only if the cache misses.  Ordered map: submission
  // order, cache-insert order and queue-wait metrics stay reproducible
  // run-to-run (the sweep is tiny, so the log(n) lookup cost is noise).
  std::map<std::string, std::vector<std::size_t>> by_key;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = canonical_key(requests[i]);
    by_key[keys[i]].push_back(i);
  }

  struct Inflight {
    std::size_t representative;
    std::future<PlanReport> future;
  };
  std::vector<Inflight> inflight;
  for (auto& [key, indices] : by_key) {
    PlanReport cached;
    if (cache_lookup(key, &cached)) {
      for (const std::size_t i : indices) {
        reports[i] = cached;
        reports[i].cache_hit = true;
        reports[i].queue_wait_seconds = 0.0;
        reports[i].label = requests[i].label;
      }
      local.cache_hits += indices.size();
      continue;
    }
    const std::size_t rep = indices.front();
    const auto submitted = Clock::now();
    inflight.push_back(
        {rep, pool_.submit([this, &requests, &keys, rep, submitted]() {
           const double waited = seconds_since(submitted);
           metrics_.timer("queue.wait_seconds").observe(waited);
           PlanReport report = solve(requests[rep], keys[rep]);
           report.queue_wait_seconds = waited;
           return report;
         })});
  }

  std::vector<double> solve_seconds;
  solve_seconds.reserve(inflight.size());
  for (Inflight& job : inflight) {
    const PlanReport solved = job.future.get();
    local.evictions += cache_insert(keys[job.representative], solved);
    ++local.solved;
    solve_seconds.push_back(solved.solve_seconds);
    local.solve_seconds_total += solved.solve_seconds;
    local.solve_seconds_max =
        std::max(local.solve_seconds_max, solved.solve_seconds);
    local.queue_wait_seconds_total += solved.queue_wait_seconds;
    local.queue_wait_seconds_max =
        std::max(local.queue_wait_seconds_max, solved.queue_wait_seconds);
    for (const std::size_t i : by_key[keys[job.representative]]) {
      reports[i] = solved;
      // Duplicates within the sweep share the representative's solve.
      reports[i].cache_hit = i != job.representative;
      if (i != job.representative) {
        reports[i].queue_wait_seconds = 0.0;
        ++local.dedup_hits;
      }
      reports[i].label = requests[i].label;
    }
  }

  for (const PlanReport& report : reports) {
    if (!report.ok()) ++local.errors;
  }
  local.wall_seconds = seconds_since(sweep_start);
  local.solve_seconds_p50 = common::metrics::percentile(solve_seconds, 0.50);
  local.solve_seconds_p90 =
      common::metrics::percentile(std::move(solve_seconds), 0.90);
  metrics_.timer("sweep.wall_seconds").observe(local.wall_seconds);

  if (stats != nullptr) *stats = local;
  return reports;
}

SimReport SweepEngine::simulate_request(const SimRequest& request,
                                        const std::string& key) {
  SimReport report;
  report.label = request.label;
  report.key = key;
  report.runs = request.monte_carlo.runs;
  report.backend = request.backend;
  const auto start = Clock::now();
  try {
    // Fail fast on malformed Monte-Carlo options before paying for the
    // plan; sim::monte_carlo re-validates at its own public boundary.
    sim::validate(request.monte_carlo);
    report.plan = *plan_one(request.plan_request());
    if (!report.plan.ok()) {
      report.status = report.plan.status;
      report.message = "plan: " + report.plan.message;
    } else {
      const sim::Schedule schedule = sim::Schedule::from_plan(
          request.config, report.plan.plan(),
          report.plan.planned.level_enabled);
      const sim::MonteCarloResult mc = backend_for(request.backend)
          .run(request.config, schedule, request.monte_carlo, &pool_);
      report.wallclock = flatten(mc.wallclock);
      report.productive = flatten(mc.productive);
      report.checkpoint = flatten(mc.checkpoint);
      report.restart = flatten(mc.restart);
      report.rollback = flatten(mc.rollback);
      report.efficiency = flatten(mc.efficiency);
      report.failures = flatten(mc.failures);
      report.incomplete_runs = mc.incomplete_runs;
      const double analytic = report.plan.wallclock();
      if (analytic > 0.0) {
        const model::TimePortions& portions =
            report.plan.planned.optimization.portions;
        report.wallclock_error = (mc.wallclock.mean() - analytic) / analytic;
        report.portion_errors.productive =
            (mc.productive.mean() - portions.productive) / analytic;
        report.portion_errors.checkpoint =
            (mc.checkpoint.mean() - portions.checkpoint) / analytic;
        report.portion_errors.restart =
            (mc.restart.mean() - portions.restart) / analytic;
        report.portion_errors.rollback =
            (mc.rollback.mean() - portions.rollback) / analytic;
      }
      report.status = opt::Status::kOk;
      report.message.clear();
    }
  } catch (...) {
    std::tie(report.status, report.message) =
        classify_failure(std::current_exception());
  }
  report.sim_seconds = seconds_since(start);

  // Aggregate instruments keep their pre-backend names; the per-backend
  // twins live under a `sim.<backend>.` / `validate.<backend>.` namespace.
  const std::string bname = to_string(request.backend);
  metrics_.counter("validate.status." + opt::to_string(report.status))
      .increment();
  metrics_.timer("sim.seconds").observe(report.sim_seconds);
  metrics_.timer("sim." + bname + ".seconds").observe(report.sim_seconds);
  if (report.ok()) {
    metrics_.counter("sim.replicas")
        .increment(static_cast<std::uint64_t>(report.runs));
    metrics_.counter("sim." + bname + ".replicas")
        .increment(static_cast<std::uint64_t>(report.runs));
    metrics_.counter("sim.incomplete")
        .increment(static_cast<std::uint64_t>(report.incomplete_runs));
    if (report.sim_seconds > 0.0) {
      metrics_.gauge("sim.replicas_per_second")
          .set(static_cast<double>(report.runs) / report.sim_seconds);
      metrics_.gauge("sim." + bname + ".replicas_per_second")
          .set(static_cast<double>(report.runs) / report.sim_seconds);
    }
    metrics_.gauge("validate.error.wallclock").set(report.wallclock_error);
    metrics_.gauge("validate." + bname + ".error.wallclock")
        .set(report.wallclock_error);
    metrics_.timer("validate.error.abs")
        .observe(std::abs(report.wallclock_error));
  }
  return report;
}

std::optional<SimReport> SweepEngine::validate_one(
    const SimRequest& request, std::optional<Deadline> deadline) {
  const std::string key = canonical_key(request);
  const std::string bname = to_string(request.backend);
  metrics_.counter("validate.requests").increment();
  metrics_.counter("validate." + bname + ".requests").increment();
  SimReport report;
  if (sim_cache_lookup(key, &report)) {
    metrics_.counter("validate." + bname + ".cache.hits").increment();
    report.cache_hit = true;
    report.label = request.label;
    return report;
  }
  metrics_.counter("validate." + bname + ".cache.misses").increment();
  if (deadline.has_value() && Clock::now() >= *deadline) {
    metrics_.counter("validate.expired").increment();
    return std::nullopt;
  }
  report = simulate_request(request, key);
  sim_cache_insert(key, report);
  return report;
}

std::vector<SimReport> SweepEngine::validate_sweep(
    const std::vector<SimRequest>& requests, SimSweepStats* stats) {
  const auto sweep_start = Clock::now();
  metrics_.counter("validate.sweeps").increment();

  SimSweepStats local;
  local.requests = requests.size();

  std::vector<SimReport> reports;
  reports.reserve(requests.size());
  for (const SimRequest& request : requests) {
    // No deadline -> validate_one is always engaged.  Each request fans
    // contiguous chunk spans across the whole pool — except requests of at
    // most sim::kMinChunk runs, which sim::monte_carlo runs inline on this
    // thread (see the header comment for why requests themselves are not
    // parallelized on top of that).
    SimReport report = *validate_one(request);
    if (report.cache_hit) {
      ++local.cache_hits;
    } else {
      ++local.simulated;
      local.replicas += static_cast<std::size_t>(report.runs);
      local.sim_seconds_total += report.sim_seconds;
      local.sim_seconds_max =
          std::max(local.sim_seconds_max, report.sim_seconds);
    }
    if (report.ok()) {
      local.worst_abs_error =
          std::max(local.worst_abs_error, std::abs(report.wallclock_error));
    } else {
      ++local.errors;
    }
    reports.push_back(std::move(report));
  }
  local.wall_seconds = seconds_since(sweep_start);
  metrics_.timer("validate.sweep.wall_seconds").observe(local.wall_seconds);

  if (stats != nullptr) *stats = local;
  return reports;
}

}  // namespace mlcr::svc
