#include "svc/sweep_engine.h"

#include <chrono>
#include <exception>
#include <future>
#include <utility>

#include "common/error.h"

namespace mlcr::svc {

SweepEngine::SweepEngine(SweepEngineOptions options)
    : options_(options), pool_(options.threads) {}

PlanReport SweepEngine::solve(const PlanRequest& request,
                              const std::string& key) const {
  PlanReport report;
  report.label = request.label;
  report.solution = request.solution;
  report.key = key;
  const auto start = std::chrono::steady_clock::now();
  try {
    report.planned = opt::plan(request.solution, request.config,
                               request.options);
    report.status = report.planned.optimization.status;
    report.message = report.planned.optimization.message;
  } catch (const common::Error& error) {
    report.status = opt::Status::kInvalidConfig;
    report.message = error.what();
  } catch (const std::exception& error) {
    report.status = opt::Status::kInvalidConfig;
    report.message = std::string("unexpected: ") + error.what();
  }
  report.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

bool SweepEngine::cache_lookup(const std::string& key,
                               PlanReport* report) const {
  if (options_.cache_capacity == 0) return false;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  *report = it->second;
  return true;
}

void SweepEngine::cache_insert(const std::string& key,
                               const PlanReport& report) {
  if (options_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_.size() >= options_.cache_capacity) return;
  cache_.emplace(key, report);
}

std::size_t SweepEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

void SweepEngine::clear_cache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
}

PlanReport SweepEngine::plan_one(const PlanRequest& request) {
  const std::string key = canonical_key(request);
  PlanReport report;
  if (cache_lookup(key, &report)) {
    report.cache_hit = true;
    report.label = request.label;
    return report;
  }
  report = solve(request, key);
  cache_insert(key, report);
  return report;
}

std::vector<PlanReport> SweepEngine::plan_all_solutions(
    const model::SystemConfig& cfg, const opt::Algorithm1Options& options) {
  std::vector<PlanRequest> requests;
  for (const auto solution : opt::all_solutions()) {
    requests.push_back({cfg, solution, options, opt::to_string(solution)});
  }
  return plan_sweep(requests);
}

std::vector<PlanReport> SweepEngine::plan_sweep(
    const std::vector<PlanRequest>& requests) {
  const std::size_t n = requests.size();
  std::vector<PlanReport> reports(n);
  std::vector<std::string> keys(n);
  // Group request indices sharing a key: each unique key is solved at most
  // once per sweep, and only if the cache misses.
  std::unordered_map<std::string, std::vector<std::size_t>> by_key;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = canonical_key(requests[i]);
    by_key[keys[i]].push_back(i);
  }

  struct Inflight {
    std::size_t representative;
    std::future<PlanReport> future;
  };
  std::vector<Inflight> inflight;
  for (auto& [key, indices] : by_key) {
    PlanReport cached;
    if (cache_lookup(key, &cached)) {
      for (const std::size_t i : indices) {
        reports[i] = cached;
        reports[i].cache_hit = true;
        reports[i].label = requests[i].label;
      }
      continue;
    }
    const std::size_t rep = indices.front();
    inflight.push_back(
        {rep, pool_.submit([this, &requests, &keys, rep]() {
           return solve(requests[rep], keys[rep]);
         })});
  }

  for (Inflight& job : inflight) {
    const PlanReport solved = job.future.get();
    cache_insert(keys[job.representative], solved);
    for (const std::size_t i : by_key[keys[job.representative]]) {
      reports[i] = solved;
      // Duplicates within the sweep share the representative's solve.
      reports[i].cache_hit = i != job.representative;
      reports[i].label = requests[i].label;
    }
  }
  return reports;
}

}  // namespace mlcr::svc
