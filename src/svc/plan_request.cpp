#include "svc/plan_request.h"

#include <cstdio>

namespace mlcr::svc {

namespace {

/// Exact hex-float rendering: distinct doubles always produce distinct text.
void append_hex(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  *out += buf;
}

void append_overhead(std::string* out, const model::Overhead& overhead) {
  append_hex(out, overhead.base);
  *out += ",";
  append_hex(out, overhead.slope);
  *out += ",";
  *out += std::to_string(static_cast<int>(overhead.scaling));
}

}  // namespace

std::string canonical_key(const PlanRequest& request) {
  const model::SystemConfig& cfg = request.config;
  std::string key;
  key.reserve(256);

  key += "sol=" + std::to_string(static_cast<int>(request.solution));
  key += "|te=";
  append_hex(&key, cfg.te());
  key += "|g=" + cfg.speedup().cache_key();
  key += "|A=";
  append_hex(&key, cfg.allocation());
  key += "|ub=";
  append_hex(&key, cfg.scale_upper_bound());

  key += "|levels=";
  for (std::size_t i = 0; i < cfg.levels(); ++i) {
    if (i > 0) key += ";";
    key += "c(";
    append_overhead(&key, cfg.level(i).checkpoint);
    key += ")r(";
    append_overhead(&key, cfg.level(i).recovery);
    key += ")";
  }

  const model::FailureRates& rates = cfg.rates();
  key += "|rates=";
  for (std::size_t i = 0; i < rates.levels(); ++i) {
    if (i > 0) key += ",";
    append_hex(&key, rates.per_day_at_baseline(i));
  }
  key += "|Nb=";
  append_hex(&key, rates.baseline_scale());
  key += "|p=";
  append_hex(&key, rates.scale_exponent());

  const opt::Algorithm1Options& options = request.options;
  key += "|delta=";
  append_hex(&key, options.delta);
  key += "|maxout=" + std::to_string(options.max_outer_iterations);
  key += "|intol=";
  append_hex(&key, options.inner_tolerance);
  key += "|inmax=" + std::to_string(options.inner_max_iterations);
  key += "|optsc=" + std::to_string(options.optimize_scale ? 1 : 0);
  key += "|fix=";
  append_hex(&key, options.fixed_scale);
  key += "|aitken=" + std::to_string(options.aitken ? 1 : 0);
  return key;
}

}  // namespace mlcr::svc
