#include "svc/system_config_builder.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/table.h"
#include "common/units.h"

namespace mlcr::svc {

namespace {

[[noreturn]] void reject(const std::string& detail) {
  common::fail("SystemConfigBuilder: " + detail);
}

void check_overhead(const model::Overhead& overhead, const std::string& field) {
  if (!(std::isfinite(overhead.base) && overhead.base >= 0.0)) {
    reject(common::strf("%s.base must be finite and non-negative (got %g)",
                        field.c_str(), overhead.base));
  }
  if (!(std::isfinite(overhead.slope) && overhead.slope >= 0.0)) {
    reject(common::strf("%s.slope must be finite and non-negative (got %g)",
                        field.c_str(), overhead.slope));
  }
}

}  // namespace

SystemConfigBuilder& SystemConfigBuilder::te_seconds(double seconds) {
  te_seconds_ = seconds;
  return *this;
}

SystemConfigBuilder& SystemConfigBuilder::te_core_days(double core_days) {
  te_seconds_ = common::core_days_to_seconds(core_days);
  return *this;
}

SystemConfigBuilder& SystemConfigBuilder::quadratic_speedup(double kappa,
                                                            double n_star) {
  quadratic_ = std::pair{kappa, n_star};
  speedup_.reset();
  return *this;
}

SystemConfigBuilder& SystemConfigBuilder::speedup(
    std::unique_ptr<model::Speedup> curve) {
  speedup_ = std::move(curve);
  quadratic_.reset();
  return *this;
}

SystemConfigBuilder& SystemConfigBuilder::add_level(model::Overhead checkpoint,
                                                    model::Overhead recovery) {
  levels_.push_back({checkpoint, recovery});
  return *this;
}

SystemConfigBuilder& SystemConfigBuilder::levels(
    std::vector<model::LevelOverheads> levels) {
  levels_ = std::move(levels);
  return *this;
}

SystemConfigBuilder& SystemConfigBuilder::failure_rates_per_day(
    std::vector<double> per_day, double baseline_scale, double exponent) {
  rates_per_day_ = std::move(per_day);
  rates_baseline_ = baseline_scale;
  rates_exponent_ = exponent;
  return *this;
}

SystemConfigBuilder& SystemConfigBuilder::allocation_seconds(double seconds) {
  allocation_seconds_ = seconds;
  return *this;
}

SystemConfigBuilder& SystemConfigBuilder::max_scale(double scale) {
  max_scale_ = scale;
  return *this;
}

model::SystemConfig SystemConfigBuilder::build() const {
  if (!te_seconds_.has_value()) {
    reject("te_seconds (or te_core_days) is required");
  }
  if (!(std::isfinite(*te_seconds_) && *te_seconds_ > 0.0)) {
    reject(common::strf("te_seconds must be positive (got %g)", *te_seconds_));
  }

  if (!quadratic_.has_value() && speedup_ == nullptr) {
    reject("a speedup curve is required (quadratic_speedup or speedup)");
  }
  std::unique_ptr<model::Speedup> curve;
  if (quadratic_.has_value()) {
    const auto [kappa, n_star] = *quadratic_;
    if (!(std::isfinite(kappa) && kappa > 0.0)) {
      reject(common::strf("quadratic_speedup.kappa must be positive (got %g)",
                          kappa));
    }
    if (!(std::isfinite(n_star) && n_star > 0.0)) {
      reject(common::strf("quadratic_speedup.N_star must be positive (got %g)",
                          n_star));
    }
    curve = std::make_unique<model::QuadraticSpeedup>(kappa, n_star);
  } else {
    curve = speedup_->clone();
  }

  if (levels_.empty()) {
    reject("at least one checkpoint level is required (add_level/levels)");
  }
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    check_overhead(levels_[i].checkpoint,
                   common::strf("levels[%zu].checkpoint", i));
    check_overhead(levels_[i].recovery,
                   common::strf("levels[%zu].recovery", i));
  }

  if (!rates_per_day_.has_value()) {
    reject("failure_rates_per_day is required");
  }
  if (rates_per_day_->size() != levels_.size()) {
    reject(common::strf(
        "failure_rates has %zu levels but %zu overhead levels were given",
        rates_per_day_->size(), levels_.size()));
  }
  for (std::size_t i = 0; i < rates_per_day_->size(); ++i) {
    const double rate = (*rates_per_day_)[i];
    if (!(std::isfinite(rate) && rate > 0.0)) {
      reject(common::strf("failure_rates[%zu] must be positive (got %g)", i,
                          rate));
    }
  }
  if (!(std::isfinite(rates_baseline_) && rates_baseline_ > 0.0)) {
    reject(common::strf("failure_rates baseline_scale must be positive "
                        "(got %g)",
                        rates_baseline_));
  }
  if (!std::isfinite(rates_exponent_)) {
    reject(common::strf("failure_rates exponent must be finite (got %g)",
                        rates_exponent_));
  }

  if (!(std::isfinite(allocation_seconds_) && allocation_seconds_ >= 0.0)) {
    reject(common::strf("allocation_seconds must be non-negative (got %g)",
                        allocation_seconds_));
  }
  if (!(max_scale_ >= 0.0)) {
    reject(common::strf("max_scale must be non-negative (got %g)",
                        max_scale_));
  }

  return model::SystemConfig(
      *te_seconds_, std::move(curve), levels_,
      model::FailureRates(*rates_per_day_, rates_baseline_, rates_exponent_),
      allocation_seconds_, max_scale_);
}

}  // namespace mlcr::svc
