// Batch-planning sweep engine: fans a grid of PlanRequests across a
// work-stealing thread pool and memoizes finished plans in an LRU cache
// keyed by the canonical request key, so repeated or overlapping sweeps skip
// the Algorithm 1 outer loop entirely.
//
// Since the SimRequest/SimReport redesign the engine is also the validation
// pipeline: validate_one solves a plan, fault-injects it with the parallel
// Monte-Carlo driver (replica chunks fanned across the same pool), and
// reports plan-vs-simulated error per time portion, memoized in a second
// LRU cache.  See DESIGN.md §11.
//
// Determinism: reports are returned in request order and each request is a
// pure function of its inputs, so a parallel sweep is bit-identical to a
// serial one.  Duplicate requests inside one sweep are solved once; the
// copies are marked cache_hit.  Simulation replicas use counter-based RNG
// streams merged in fixed chunk order, so a SimReport is bit-identical for
// every thread count (timing fields aside).
//
// Observability: every engine owns a common::metrics::Registry recording
// cache traffic (hits / misses / evictions / inserts), solver status
// taxonomy, solve-time and queue-wait histograms, outer-iteration counts,
// and the validate.* / sim.* instruments (replica throughput, sim-time
// histograms, error gauges); `plan_sweep` / `validate_sweep` can
// additionally return per-sweep aggregates.  See DESIGN.md §8 and §11 for
// the metric names.
//
// Entry points (supersede looping over opt::plan — see DESIGN.md):
//   plan_one            one request (cache-aware, optional deadline)
//   plan_all_solutions  the paper's four solution families, in parallel
//   plan_sweep          an arbitrary request grid, in parallel
//   validate_one        plan + Monte-Carlo validation of one request
//   validate_sweep      a grid of validations (each internally parallel)
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "svc/plan_request.h"
#include "svc/sharded_cache.h"
#include "svc/sim_request.h"

namespace mlcr::svc {

/// The engine's deadline clock.  A nullopt deadline means "never expires".
using Deadline = std::chrono::steady_clock::time_point;

struct SweepEngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Maximum cached plan reports; 0 disables memoization entirely (each
  /// sweep still deduplicates within itself).  At capacity the
  /// least-recently-used entry is evicted, so fresh plans always land in
  /// the cache.
  std::size_t cache_capacity = 65536;
  /// Maximum cached validation (SimReport) results; 0 disables the sim
  /// cache.  Sized separately from the plan cache because one SimReport is
  /// orders of magnitude more expensive to recompute.
  std::size_t sim_cache_capacity = 4096;
  /// Lock shards for both caches (key-hash sharded, shared-nothing; see
  /// svc/sharded_cache.h).  More shards = less contention between reactor
  /// shards and solver workers; the default suits up to ~16 client threads.
  std::size_t cache_shards = 8;
};

/// Aggregates for one plan_sweep call.  `requests` always equals
/// `solved + cache_hits + dedup_hits`; percentiles cover the requests this
/// sweep actually solved (cache hits keep their original solve time and are
/// excluded).
struct SweepStats {
  std::size_t requests = 0;
  std::size_t solved = 0;       ///< solver runs performed by this sweep
  std::size_t cache_hits = 0;   ///< served from the cross-sweep cache
  std::size_t dedup_hits = 0;   ///< duplicates folded within this sweep
  std::size_t evictions = 0;    ///< LRU evictions caused by this sweep
  std::size_t errors = 0;       ///< reports with status != kOk
  double wall_seconds = 0.0;    ///< end-to-end sweep wall time
  double solve_seconds_total = 0.0;
  double solve_seconds_p50 = 0.0;
  double solve_seconds_p90 = 0.0;
  double solve_seconds_max = 0.0;
  double queue_wait_seconds_total = 0.0;
  double queue_wait_seconds_max = 0.0;
};

/// Aggregates for one validate_sweep call.  `requests` always equals
/// `simulated + cache_hits`.
struct SimSweepStats {
  std::size_t requests = 0;
  std::size_t simulated = 0;    ///< validations actually run by this sweep
  std::size_t cache_hits = 0;   ///< served from the sim cache
  std::size_t errors = 0;       ///< reports with status != kOk
  std::size_t replicas = 0;     ///< Monte-Carlo runs executed by this sweep
  double wall_seconds = 0.0;    ///< end-to-end sweep wall time
  double sim_seconds_total = 0.0;
  double sim_seconds_max = 0.0;
  double worst_abs_error = 0.0;  ///< max |wallclock_error| among ok reports
};

/// Maps an exception escaping the solver to the report status taxonomy:
/// common::NumericError (the math diverged mid-solve) -> kDiverged,
/// common::Error (the request was malformed) -> kInvalidConfig, anything
/// else -> kInternalError.  Exposed as a free function so tests can pin the
/// taxonomy without forcing each failure mode through a full solve.
[[nodiscard]] std::pair<opt::Status, std::string> classify_failure(
    std::exception_ptr error);

class SweepEngine {
 public:
  explicit SweepEngine(SweepEngineOptions options = {});

  /// Plans one request, consulting and filling the cache.  The cache is
  /// consulted first and hits are always served (they cost microseconds),
  /// but a cache miss whose deadline has already passed returns nullopt
  /// without entering the solver — the caller answers "rejected: deadline".
  /// Expired misses are counted in the `requests.expired` metric.  Without
  /// a deadline (the default) the result is always engaged.
  [[nodiscard]] std::optional<PlanReport> plan_one(
      const PlanRequest& request,
      std::optional<Deadline> deadline = std::nullopt);

  /// Plans all four solution families of opt::all_solutions() on `cfg`,
  /// in parallel; reports come back in all_solutions() order.
  [[nodiscard]] std::vector<PlanReport> plan_all_solutions(
      const model::SystemConfig& cfg,
      const opt::Algorithm1Options& options = {}, SweepStats* stats = nullptr);

  /// Plans the whole grid across the pool.  Reports are returned in request
  /// order with values identical to serial execution.  When `stats` is
  /// non-null it receives this sweep's aggregates.
  [[nodiscard]] std::vector<PlanReport> plan_sweep(
      const std::vector<PlanRequest>& requests, SweepStats* stats = nullptr);

  /// Validates one request: plan (through plan_one, sharing the plan cache),
  /// then Monte-Carlo-simulate the plan with replica chunks fanned across
  /// the engine pool, then report plan-vs-simulated errors.  Deadline
  /// semantics mirror plan_one: sim-cache hits are always served; an
  /// expired miss returns nullopt (metric `validate.expired`) without
  /// simulating.  Failures never throw — they come back as a report with
  /// the classify_failure status taxonomy.
  [[nodiscard]] std::optional<SimReport> validate_one(
      const SimRequest& request,
      std::optional<Deadline> deadline = std::nullopt);

  /// Validates a grid.  Requests run one after another — each one already
  /// fans its replicas across the whole pool, and nesting request-level
  /// parallelism on the same pool could block workers on futures — and
  /// reports are returned in request order, bit-identical to any other
  /// execution of the same grid (timing fields aside).
  [[nodiscard]] std::vector<SimReport> validate_sweep(
      const std::vector<SimRequest>& requests, SimSweepStats* stats = nullptr);

  /// Lock-free-path cache probes for the serving layer: the reactor thread
  /// answers a hot key straight from the cache without ever touching the
  /// admission queue or solver pool.  A hit counts in cache.hits exactly
  /// like plan_one's own probe; a miss counts in cache.misses (the caller
  /// is expected to go on and solve, so the miss is real).
  [[nodiscard]] bool try_cached_plan(const std::string& canonical_key,
                                     PlanReport* report);
  [[nodiscard]] bool try_cached_sim(const std::string& canonical_key,
                                    SimReport* report);

  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
  [[nodiscard]] std::size_t cache_size() const;
  [[nodiscard]] std::size_t sim_cache_size() const;
  void clear_cache();

  /// Exact per-shard counters for the two caches (bench_net records them;
  /// tests pin eviction attribution).  Index = shard index.
  [[nodiscard]] std::vector<ShardedLruCache<PlanReport>::ShardStats>
  plan_cache_stats() const {
    return cache_.shard_stats();
  }
  [[nodiscard]] std::vector<ShardedLruCache<SimReport>::ShardStats>
  sim_cache_stats() const {
    return sim_cache_.shard_stats();
  }

  /// Engine-lifetime instrumentation (cache traffic, status taxonomy,
  /// solve/queue-wait histograms, validate.* / sim.* instruments).  Safe to
  /// read while sweeps run.
  [[nodiscard]] common::metrics::Registry& metrics() noexcept {
    return metrics_;
  }
  [[nodiscard]] const common::metrics::Registry& metrics() const noexcept {
    return metrics_;
  }

 private:
  /// Runs the planner for `request`; never throws — failures come back with
  /// the classify_failure status taxonomy.
  [[nodiscard]] PlanReport solve(const PlanRequest& request,
                                 const std::string& key);
  /// Plans and simulates one validation request (the cache-miss path of
  /// validate_one); never throws.
  [[nodiscard]] SimReport simulate_request(const SimRequest& request,
                                           const std::string& key);
  /// Consults the cache, promoting a hit to most-recently-used.
  [[nodiscard]] bool cache_lookup(const std::string& key, PlanReport* report);
  /// Inserts (LRU-evicting at capacity); returns evictions performed.
  std::size_t cache_insert(const std::string& key, const PlanReport& report);
  [[nodiscard]] bool sim_cache_lookup(const std::string& key,
                                      SimReport* report);
  std::size_t sim_cache_insert(const std::string& key,
                               const SimReport& report);

  SweepEngineOptions options_;
  common::ThreadPool pool_;
  common::metrics::Registry metrics_;
  ShardedLruCache<PlanReport> cache_;
  ShardedLruCache<SimReport> sim_cache_;
};

}  // namespace mlcr::svc
