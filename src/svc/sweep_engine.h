// Batch-planning sweep engine: fans a grid of PlanRequests across a
// work-stealing thread pool and memoizes finished plans in a cache keyed by
// the canonical request key, so repeated or overlapping sweeps skip the
// Algorithm 1 outer loop entirely.
//
// Determinism: reports are returned in request order and each request is a
// pure function of its inputs, so a parallel sweep is bit-identical to a
// serial one.  Duplicate requests inside one sweep are solved once; the
// copies are marked cache_hit.
//
// Entry points (supersede looping over opt::plan — see DESIGN.md):
//   plan_one            one request (cache-aware)
//   plan_all_solutions  the paper's four solution families, in parallel
//   plan_sweep          an arbitrary request grid, in parallel
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "svc/plan_request.h"

namespace mlcr::svc {

struct SweepEngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Maximum cached reports; 0 disables memoization entirely (each sweep
  /// still deduplicates within itself).  Insertion stops at capacity.
  std::size_t cache_capacity = 65536;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepEngineOptions options = {});

  /// Plans one request, consulting and filling the cache.
  [[nodiscard]] PlanReport plan_one(const PlanRequest& request);

  /// Plans all four solution families of opt::all_solutions() on `cfg`,
  /// in parallel; reports come back in all_solutions() order.
  [[nodiscard]] std::vector<PlanReport> plan_all_solutions(
      const model::SystemConfig& cfg,
      const opt::Algorithm1Options& options = {});

  /// Plans the whole grid across the pool.  Reports are returned in request
  /// order with values identical to serial execution.
  [[nodiscard]] std::vector<PlanReport> plan_sweep(
      const std::vector<PlanRequest>& requests);

  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
  [[nodiscard]] std::size_t cache_size() const;
  void clear_cache();

 private:
  /// Runs the planner for `request`; never throws — configuration errors
  /// come back as status kInvalidConfig.
  [[nodiscard]] PlanReport solve(const PlanRequest& request,
                                 const std::string& key) const;
  [[nodiscard]] bool cache_lookup(const std::string& key,
                                  PlanReport* report) const;
  void cache_insert(const std::string& key, const PlanReport& report);

  SweepEngineOptions options_;
  common::ThreadPool pool_;
  mutable std::mutex cache_mutex_;
  std::unordered_map<std::string, PlanReport> cache_;
};

}  // namespace mlcr::svc
