// Batch-planning sweep engine: fans a grid of PlanRequests across a
// work-stealing thread pool and memoizes finished plans in an LRU cache
// keyed by the canonical request key, so repeated or overlapping sweeps skip
// the Algorithm 1 outer loop entirely.
//
// Determinism: reports are returned in request order and each request is a
// pure function of its inputs, so a parallel sweep is bit-identical to a
// serial one.  Duplicate requests inside one sweep are solved once; the
// copies are marked cache_hit.
//
// Observability: every engine owns a common::metrics::Registry recording
// cache traffic (hits / misses / evictions / inserts), solver status
// taxonomy, solve-time and queue-wait histograms, and outer-iteration
// counts; `plan_sweep` can additionally return a per-sweep SweepStats
// aggregate.  See DESIGN.md §8 for the metric names.
//
// Entry points (supersede looping over opt::plan — see DESIGN.md):
//   plan_one            one request (cache-aware)
//   plan_all_solutions  the paper's four solution families, in parallel
//   plan_sweep          an arbitrary request grid, in parallel
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "svc/lru_cache.h"
#include "svc/plan_request.h"

namespace mlcr::svc {

struct SweepEngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Maximum cached reports; 0 disables memoization entirely (each sweep
  /// still deduplicates within itself).  At capacity the least-recently-used
  /// entry is evicted, so fresh plans always land in the cache.
  std::size_t cache_capacity = 65536;
};

/// Aggregates for one plan_sweep call.  `requests` always equals
/// `solved + cache_hits + dedup_hits`; percentiles cover the requests this
/// sweep actually solved (cache hits keep their original solve time and are
/// excluded).
struct SweepStats {
  std::size_t requests = 0;
  std::size_t solved = 0;       ///< solver runs performed by this sweep
  std::size_t cache_hits = 0;   ///< served from the cross-sweep cache
  std::size_t dedup_hits = 0;   ///< duplicates folded within this sweep
  std::size_t evictions = 0;    ///< LRU evictions caused by this sweep
  std::size_t errors = 0;       ///< reports with status != kOk
  double wall_seconds = 0.0;    ///< end-to-end sweep wall time
  double solve_seconds_total = 0.0;
  double solve_seconds_p50 = 0.0;
  double solve_seconds_p90 = 0.0;
  double solve_seconds_max = 0.0;
  double queue_wait_seconds_total = 0.0;
  double queue_wait_seconds_max = 0.0;
};

/// Maps an exception escaping the solver to the report status taxonomy:
/// common::NumericError (the math diverged mid-solve) -> kDiverged,
/// common::Error (the request was malformed) -> kInvalidConfig, anything
/// else -> kInternalError.  Exposed as a free function so tests can pin the
/// taxonomy without forcing each failure mode through a full solve.
[[nodiscard]] std::pair<opt::Status, std::string> classify_failure(
    std::exception_ptr error);

class SweepEngine {
 public:
  explicit SweepEngine(SweepEngineOptions options = {});

  /// Plans one request, consulting and filling the cache.
  [[nodiscard]] PlanReport plan_one(const PlanRequest& request);

  /// Deadline-aware variant used by the serving layer (src/net): the cache
  /// is consulted first and hits are always served (they cost microseconds),
  /// but a cache miss whose deadline has already passed returns nullopt
  /// without entering the solver — the caller answers "rejected: deadline".
  /// Expired misses are counted in the `requests.expired` metric.
  [[nodiscard]] std::optional<PlanReport> plan_one(
      const PlanRequest& request,
      std::chrono::steady_clock::time_point deadline);

  /// Plans all four solution families of opt::all_solutions() on `cfg`,
  /// in parallel; reports come back in all_solutions() order.
  [[nodiscard]] std::vector<PlanReport> plan_all_solutions(
      const model::SystemConfig& cfg,
      const opt::Algorithm1Options& options = {}, SweepStats* stats = nullptr);

  /// Plans the whole grid across the pool.  Reports are returned in request
  /// order with values identical to serial execution.  When `stats` is
  /// non-null it receives this sweep's aggregates.
  [[nodiscard]] std::vector<PlanReport> plan_sweep(
      const std::vector<PlanRequest>& requests, SweepStats* stats = nullptr);

  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
  [[nodiscard]] std::size_t cache_size() const;
  void clear_cache();

  /// Engine-lifetime instrumentation (cache traffic, status taxonomy,
  /// solve/queue-wait histograms).  Safe to read while sweeps run.
  [[nodiscard]] common::metrics::Registry& metrics() noexcept {
    return metrics_;
  }
  [[nodiscard]] const common::metrics::Registry& metrics() const noexcept {
    return metrics_;
  }

 private:
  /// Runs the planner for `request`; never throws — failures come back with
  /// the classify_failure status taxonomy.
  [[nodiscard]] PlanReport solve(const PlanRequest& request,
                                 const std::string& key);
  /// Consults the cache, promoting a hit to most-recently-used.
  [[nodiscard]] bool cache_lookup(const std::string& key, PlanReport* report);
  /// Inserts (LRU-evicting at capacity); returns evictions performed.
  std::size_t cache_insert(const std::string& key, const PlanReport& report);

  SweepEngineOptions options_;
  common::ThreadPool pool_;
  common::metrics::Registry metrics_;
  mutable std::mutex cache_mutex_;
  LruCache<std::string, PlanReport> cache_;
};

}  // namespace mlcr::svc
