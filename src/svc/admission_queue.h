// Bounded admission queue fronting the sweep engine in serving deployments
// (src/net's mlcrd).  Back-pressure is explicit: `try_push` on a full queue
// returns false immediately, so the caller can answer "rejected: overloaded"
// instead of buffering without bound and timing out every queued request
// once the solver falls behind.
//
// `close()` starts a drain: no further pushes are admitted, consumers keep
// popping until the queue is empty, then `pop` returns false and the workers
// exit.  This is the "finish in-flight solves" half of graceful shutdown.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

namespace mlcr::svc {

class AdmissionQueue {
 public:
  /// `capacity == 0` is a valid degenerate queue that admits nothing —
  /// every try_push is rejected (used to force load-shedding in tests).
  explicit AdmissionQueue(std::size_t capacity);

  /// Admits `job` unless the queue is full or closed; never blocks.
  [[nodiscard]] bool try_push(std::function<void()> job);

  /// Blocks until a job is available or the queue is drained; false means
  /// closed-and-empty (the consumer should exit).
  [[nodiscard]] bool pop(std::function<void()>* job);

  /// Stops admissions and wakes every blocked consumer.  Jobs already
  /// queued are still handed out.
  void close();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> jobs_;
  bool closed_ = false;
};

}  // namespace mlcr::svc
