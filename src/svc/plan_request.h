// The unified request/report pair of the batch-planning service layer.
//
// A PlanRequest bundles everything Algorithm 1 needs for one planning run:
// the system under study, the solution family, and the solver options.
// `canonical_key` renders the request into a canonical string (hex-float
// exact) so the sweep engine can memoize: two requests with equal keys are
// guaranteed to describe the same optimization problem and therefore the
// same plan.
//
// A PlanReport is the matching output: the plan itself (in the full L-level
// space, like opt::PlannerResult), the convergence status and message, the
// analytic wall-clock/portions, the solve wall time, and whether the result
// was served from cache.
#pragma once

#include <string>

#include "model/system.h"
#include "opt/algorithm1.h"
#include "opt/planner.h"

namespace mlcr::svc {

struct PlanRequest {
  model::SystemConfig config;
  opt::Solution solution = opt::Solution::kMultilevelOptScale;
  opt::Algorithm1Options options;
  /// Free-form tag echoed into the report; NOT part of the cache key.
  std::string label;
};

struct PlanReport {
  std::string label;
  opt::Solution solution = opt::Solution::kMultilevelOptScale;
  /// Cache key of the originating request (useful for debugging sweeps).
  std::string key;

  opt::Status status = opt::Status::kInvalidConfig;
  std::string message;

  /// Plan + optimization details in the full L-level space (valid only when
  /// status is kOk / kMaxIterations; kMaxIterations carries the last
  /// iterate, kDiverged / kInvalidConfig leave it default-constructed or
  /// partial).
  opt::PlannerResult planned;

  /// Wall time spent inside the solver for this request, seconds.  Reports
  /// served from cache keep the original solve time.
  double solve_seconds = 0.0;
  /// Time the request waited in the pool queue before its solve started,
  /// seconds.  Zero for cache hits and in-sweep duplicates (they never
  /// queue); together with solve_seconds this separates "the engine is
  /// saturated" from "the solver is slow".
  double queue_wait_seconds = 0.0;
  bool cache_hit = false;

  [[nodiscard]] bool ok() const noexcept { return status == opt::Status::kOk; }
  [[nodiscard]] double wallclock() const noexcept {
    return planned.optimization.wallclock;
  }
  [[nodiscard]] const model::Plan& plan() const noexcept {
    return planned.full_plan;
  }
};

/// Canonical memoization key: exact text rendering of every field that
/// influences the solution (system, solution family, solver options).
[[nodiscard]] std::string canonical_key(const PlanRequest& request);

}  // namespace mlcr::svc
