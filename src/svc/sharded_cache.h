// Sharded LRU cache: N independent LruCache shards, each behind its own
// mutex, with the shard chosen by the key's hash.  Replaces the sweep
// engine's single cache mutex, which serialized every lookup across every
// reactor shard and solver worker — with key-hash sharding, two requests
// for different keys contend only when they land in the same shard, and a
// shard's critical section is a single list splice.
//
// Sharding is by canonical-key hash, NOT by whoever is asking: a given key
// always lives in exactly one shard, so there are no duplicate entries and
// a singleflight table sharded the same way coalesces across connections
// regardless of which reactor owns them.
//
// Each shard keeps its own hit/miss/insert/eviction counters (under the
// same mutex as the data, so they are exact), exposed via shard_stats() —
// bench_net records them so the serving-layer cache gate is attributable
// per shard.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <mutex>

#include "svc/lru_cache.h"

namespace mlcr::svc {

template <typename Value>
class ShardedLruCache {
 public:
  struct ShardStats {
    std::size_t size = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t inserts = 0;
    std::size_t evictions = 0;
  };

  /// `capacity` is the total entry budget, split evenly (rounded up) across
  /// `shards`; 0 disables caching entirely.  `shards` is clamped to >= 1.
  ShardedLruCache(std::size_t capacity, std::size_t shards) {
    if (shards == 0) shards = 1;
    if (capacity > 0 && shards > capacity) shards = capacity;
    const std::size_t per_shard =
        capacity == 0 ? 0 : (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
    capacity_ = capacity;
  }

  /// Copies the cached value into *value and promotes it; false on miss.
  bool get(const std::string& key, Value* value) {
    if (capacity_ == 0) return false;
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const bool hit = shard.lru.get(key, value);
    ++(hit ? shard.stats.hits : shard.stats.misses);
    return hit;
  }

  /// Inserts or refreshes; returns the number of evictions (0 or 1).
  std::size_t put(const std::string& key, const Value& value) {
    if (capacity_ == 0) return 0;
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::size_t evicted = shard.lru.put(key, value);
    ++shard.stats.inserts;
    shard.stats.evictions += evicted;
    return evicted;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->lru.size();
    }
    return total;
  }

  void clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->lru.clear();
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_index(const std::string& key) const {
    return std::hash<std::string>{}(key) % shards_.size();
  }

  /// Exact point-in-time per-shard counters, shard-index order.
  [[nodiscard]] std::vector<ShardStats> shard_stats() const {
    std::vector<ShardStats> stats;
    stats.reserve(shards_.size());
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      ShardStats snapshot = shard->stats;
      snapshot.size = shard->lru.size();
      stats.push_back(snapshot);
    }
    return stats;
  }

 private:
  struct Shard {
    explicit Shard(std::size_t per_shard_capacity)
        : lru(per_shard_capacity) {}
    mutable std::mutex mutex;
    LruCache<std::string, Value> lru;
    ShardStats stats;
  };

  Shard& shard_of(const std::string& key) {
    return *shards_[shard_index(key)];
  }

  std::size_t capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mlcr::svc
