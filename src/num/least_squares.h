// Linear least squares.  The paper uses LSQ twice: fitting the per-level
// checkpoint-cost coefficients (eps_i, alpha_i) from Table II-style
// characterizations (Formulas (19)/(20)), and fitting the quadratic speedup
// curve of Formula (12) from measured speedups (Figure 2).
#pragma once

#include <span>
#include <vector>

namespace mlcr::num {

struct FitResult {
  bool ok = false;
  std::vector<double> coefficients;
  double residual_sum_squares = 0.0;
  double r_squared = 0.0;
};

/// Solves min ||X beta - y||^2 via normal equations with partial pivoting.
/// `design` is row-major with `columns` entries per row; rows = y.size().
[[nodiscard]] FitResult linear_least_squares(std::span<const double> design,
                                             std::size_t columns,
                                             std::span<const double> y);

/// Fits y ~ c0 + c1 x + ... + c_degree x^degree.
[[nodiscard]] FitResult fit_polynomial(std::span<const double> x,
                                       std::span<const double> y, int degree);

/// Fits the paper's Formula (19)/(20) shape y ~ eps + alpha * h(x), returning
/// {eps, alpha}.  `h` values must be precomputed per sample (h=0 for all
/// samples degenerates to a mean fit with alpha=0).
[[nodiscard]] FitResult fit_affine_in(std::span<const double> h,
                                      std::span<const double> y);

/// Fits the paper's Formula (12) quadratic-through-origin speedup
/// g(N) = a2 N^2 + a1 N (no constant term), returning {a1, a2}.
/// From (a1, a2): kappa = a1 and N_symmetry = -a1 / (2 a2) when a2 < 0.
[[nodiscard]] FitResult fit_quadratic_through_origin(std::span<const double> n,
                                                     std::span<const double> g);

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting.  Returns empty on singular systems.  `a` is row-major n x n.
[[nodiscard]] std::vector<double> solve_linear_system(std::vector<double> a,
                                                      std::vector<double> b);

}  // namespace mlcr::num
