// Scalar root finding: bisection (the paper's method for Formula (17)/(24)),
// Newton, and Brent's method.  All return a RootResult rather than throwing,
// because non-bracketing intervals are an expected outcome in the optimizer
// (paper: "if no root exists in [0, N_star], the optimum is N_star").
#pragma once

#include <functional>

namespace mlcr::num {

struct RootResult {
  bool converged = false;
  double root = 0.0;
  double f_at_root = 0.0;
  int iterations = 0;
};

struct RootOptions {
  double x_tolerance = 1e-9;   ///< stop when bracket/step is below this
  double f_tolerance = 0.0;    ///< stop when |f| is below this (0 = ignore)
  int max_iterations = 200;
};

using Fn = std::function<double(double)>;

/// Bisection on [lo, hi]; requires f(lo) and f(hi) of opposite sign, else
/// returns converged=false.  The paper stops when the bracket is < 0.5 when
/// solving for an integer N; express that via options.x_tolerance.
[[nodiscard]] RootResult bisect(const Fn& f, double lo, double hi,
                                const RootOptions& options = {});

/// Newton iteration with numerical or user-supplied derivative.
[[nodiscard]] RootResult newton(const Fn& f, const Fn& df, double x0,
                                const RootOptions& options = {});

/// Brent's method (bracketing + inverse quadratic interpolation).
[[nodiscard]] RootResult brent(const Fn& f, double lo, double hi,
                               const RootOptions& options = {});

/// True iff f(lo) and f(hi) have strictly opposite signs.
[[nodiscard]] bool brackets_root(const Fn& f, double lo, double hi);

}  // namespace mlcr::num
