// 1-D minimization (golden section) and small grid utilities, used by the
// brute-force verifier that cross-checks the analytic optimizers, and by the
// ablation bench (bisection-on-derivative vs direct golden-section search).
#pragma once

#include <functional>
#include <vector>

namespace mlcr::num {

struct MinimizeResult {
  bool converged = false;
  double x = 0.0;
  double f = 0.0;
  int iterations = 0;
};

/// Golden-section search for the minimum of a unimodal f on [lo, hi].
[[nodiscard]] MinimizeResult golden_section(
    const std::function<double(double)>& f, double lo, double hi,
    double x_tolerance = 1e-9, int max_iterations = 500);

/// Evaluates f on a geometric grid over [lo, hi] and returns the argmin.
/// Cheap global sanity check for non-unimodal landscapes.
[[nodiscard]] MinimizeResult grid_min(const std::function<double(double)>& f,
                                      double lo, double hi, int samples);

}  // namespace mlcr::num
