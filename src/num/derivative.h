// Numerical differentiation and convexity probes.  Used by tests to check
// the paper's claims (e.g. d2 E(Tw)/dx^2 > 0 near the optimum) and by the
// grid verifier to confirm stationarity of optimizer outputs.
#pragma once

#include <functional>

namespace mlcr::num {

/// Central-difference first derivative with relative step.
[[nodiscard]] double derivative(const std::function<double(double)>& f,
                                double x, double relative_step = 1e-6);

/// Central-difference second derivative.
[[nodiscard]] double second_derivative(const std::function<double(double)>& f,
                                       double x, double relative_step = 1e-5);

/// Samples f on [lo, hi] at `samples` points and checks midpoint convexity:
/// f((a+b)/2) <= (f(a)+f(b))/2 + slack for every adjacent triple.
[[nodiscard]] bool is_convex_on(const std::function<double(double)>& f,
                                double lo, double hi, int samples = 64,
                                double relative_slack = 1e-9);

}  // namespace mlcr::num
