#include "num/minimize.h"

#include <cmath>

#include "common/error.h"

namespace mlcr::num {

MinimizeResult golden_section(const std::function<double(double)>& f,
                              double lo, double hi, double x_tolerance,
                              int max_iterations) {
  MLCR_EXPECT(lo < hi, "golden_section: empty interval");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  MinimizeResult result;
  for (int it = 0; it < max_iterations; ++it) {
    result.iterations = it + 1;
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
    if (b - a <= x_tolerance) break;
  }
  result.converged = (b - a) <= x_tolerance * 4.0;
  result.x = 0.5 * (a + b);
  result.f = f(result.x);
  return result;
}

MinimizeResult grid_min(const std::function<double(double)>& f, double lo,
                        double hi, int samples) {
  MLCR_EXPECT(samples >= 2, "grid_min: need at least 2 samples");
  MLCR_EXPECT(lo < hi, "grid_min: empty interval");
  MinimizeResult result;
  result.f = std::numeric_limits<double>::infinity();
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (hi - lo) * i / (samples - 1);
    const double v = f(x);
    if (v < result.f) {
      result.f = v;
      result.x = x;
    }
  }
  result.converged = std::isfinite(result.f);
  result.iterations = samples;
  return result;
}

}  // namespace mlcr::num
