#include "num/derivative.h"

#include <cmath>

#include "common/error.h"

namespace mlcr::num {

double derivative(const std::function<double(double)>& f, double x,
                  double relative_step) {
  const double h = relative_step * std::max(1.0, std::fabs(x));
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

double second_derivative(const std::function<double(double)>& f, double x,
                         double relative_step) {
  const double h = relative_step * std::max(1.0, std::fabs(x));
  return (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
}

bool is_convex_on(const std::function<double(double)>& f, double lo, double hi,
                  int samples, double relative_slack) {
  MLCR_EXPECT(samples >= 3, "is_convex_on: need at least 3 samples");
  MLCR_EXPECT(lo < hi, "is_convex_on: empty interval");
  std::vector<double> values(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double x = lo + (hi - lo) * i / (samples - 1);
    values[static_cast<std::size_t>(i)] = f(x);
  }
  for (int i = 1; i + 1 < samples; ++i) {
    const double mid = values[static_cast<std::size_t>(i)];
    const double chord = 0.5 * (values[static_cast<std::size_t>(i - 1)] +
                                values[static_cast<std::size_t>(i + 1)]);
    const double slack =
        relative_slack * std::max({1.0, std::fabs(mid), std::fabs(chord)});
    if (mid > chord + slack) return false;
  }
  return true;
}

}  // namespace mlcr::num
