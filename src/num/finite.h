// Finite-math guards for the solver hot paths.
//
// The model/opt formula code (paper Formulas (16)-(24)) is pure floating
// point; a NaN or Inf born anywhere inside it flows through every later
// fixed-point iteration and can surface as a plausible-looking plan.
// mlcr-lint (rule `unguarded-math`) bans direct exp/log-family calls in
// src/model and src/opt; these wrappers are the sanctioned route.  Each
// evaluates the same function and throws common::NumericError the moment
// the result is not finite, which the Algorithm 1 boundary maps to
// opt::Status::kDiverged (never an exception, never a numeric plan).
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/error.h"

namespace mlcr::num {

/// Returns `value` unchanged, or throws common::NumericError naming `what`
/// if it is NaN or infinite.  The standard guard at solver boundaries.
inline double require_finite(double value, const char* what) {
  if (!std::isfinite(value)) {
    common::fail_numeric(std::string(what) + ": non-finite value (" +
                         (std::isnan(value) ? "nan" : "inf") + ")");
  }
  return value;
}

/// True when every element is finite (empty ranges are finite).
[[nodiscard]] inline bool all_finite(const std::vector<double>& values) {
  for (const double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// exp with a finite-result guard: overflow to +inf throws instead of
/// propagating.
inline double checked_exp(double x, const char* what = "checked_exp") {
  return require_finite(std::exp(x), what);
}

/// log with domain and finite-result guards: x <= 0 throws NumericError
/// (where the bare call would return -inf or NaN).
inline double checked_log(double x, const char* what = "checked_log") {
  if (!(x > 0.0)) {
    common::fail_numeric(std::string(what) +
                         ": log of a non-positive value");
  }
  return require_finite(std::log(x), what);
}

/// log1p with the matching domain guard (x must exceed -1).
inline double checked_log1p(double x, const char* what = "checked_log1p") {
  if (!(x > -1.0)) {
    common::fail_numeric(std::string(what) + ": log1p argument <= -1");
  }
  return require_finite(std::log1p(x), what);
}

/// sqrt with a domain guard: a negative argument throws NumericError
/// (where the bare call would return NaN).
inline double checked_sqrt(double x, const char* what = "checked_sqrt") {
  if (x < 0.0) {
    common::fail_numeric(std::string(what) + ": sqrt of a negative value");
  }
  return require_finite(std::sqrt(x), what);
}

/// pow with a finite-result guard (catches 0^negative and overflow).
inline double checked_pow(double base, double exponent,
                          const char* what = "checked_pow") {
  return require_finite(std::pow(base, exponent), what);
}

/// Division that refuses to manufacture inf/NaN: throws NumericError on a
/// zero (or denormal-underflow) denominator instead of returning inf.
inline double checked_div(double numerator, double denominator,
                          const char* what = "checked_div") {
  if (denominator == 0.0) {
    common::fail_numeric(std::string(what) + ": division by zero");
  }
  return require_finite(numerator / denominator, what);
}

}  // namespace mlcr::num
