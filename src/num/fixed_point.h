// Generic fixed-point iteration driver used by the paper's optimizers:
// the inner loop of Section III-C.2 (Formulas (16)/(17)) and Section III-D
// (Formulas (23)/(24)), and the outer loop of Algorithm 1.
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

namespace mlcr::num {

struct FixedPointResult {
  bool converged = false;
  std::vector<double> value;
  int iterations = 0;
  double final_change = 0.0;  ///< max |x_new - x_old| at the last step
};

struct FixedPointOptions {
  double tolerance = 1e-9;  ///< max-norm change below which we stop
  int max_iterations = 10000;
};

/// Iterates x <- step(x) until the max-norm change drops below tolerance.
/// `step` receives the current iterate and returns the next one (same size).
[[nodiscard]] inline FixedPointResult fixed_point(
    const std::function<std::vector<double>(const std::vector<double>&)>& step,
    std::vector<double> x0, const FixedPointOptions& options = {}) {
  FixedPointResult result;
  result.value = std::move(x0);
  for (int it = 0; it < options.max_iterations; ++it) {
    std::vector<double> next = step(result.value);
    double change = 0.0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      const double prev = i < result.value.size() ? result.value[i] : 0.0;
      change = std::max(change, std::fabs(next[i] - prev));
    }
    result.value = std::move(next);
    result.iterations = it + 1;
    result.final_change = change;
    if (change <= options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace mlcr::num
