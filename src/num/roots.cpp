#include "num/roots.h"

#include <cmath>

#include "common/error.h"

namespace mlcr::num {

bool brackets_root(const Fn& f, double lo, double hi) {
  const double flo = f(lo);
  const double fhi = f(hi);
  return (flo < 0.0 && fhi > 0.0) || (flo > 0.0 && fhi < 0.0);
}

RootResult bisect(const Fn& f, double lo, double hi,
                  const RootOptions& options) {
  MLCR_EXPECT(lo <= hi, "bisect: empty interval");
  RootResult result;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {true, lo, 0.0, 0};
  if (fhi == 0.0) return {true, hi, 0.0, 0};
  if ((flo < 0.0) == (fhi < 0.0)) return result;  // not bracketing

  for (int it = 0; it < options.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    result.iterations = it + 1;
    if ((fmid < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
      fhi = fmid;
    }
    if (hi - lo <= options.x_tolerance ||
        (options.f_tolerance > 0.0 && std::fabs(fmid) <= options.f_tolerance)) {
      result.converged = true;
      result.root = 0.5 * (lo + hi);
      result.f_at_root = f(result.root);
      return result;
    }
  }
  result.converged = true;  // bracket shrank every step; report the midpoint
  result.root = 0.5 * (lo + hi);
  result.f_at_root = f(result.root);
  return result;
}

RootResult newton(const Fn& f, const Fn& df, double x0,
                  const RootOptions& options) {
  RootResult result;
  double x = x0;
  for (int it = 0; it < options.max_iterations; ++it) {
    const double fx = f(x);
    const double dfx = df(x);
    result.iterations = it + 1;
    if (dfx == 0.0 || !std::isfinite(dfx)) return result;
    const double step = fx / dfx;
    x -= step;
    if (!std::isfinite(x)) return result;
    if (std::fabs(step) <= options.x_tolerance ||
        (options.f_tolerance > 0.0 && std::fabs(fx) <= options.f_tolerance)) {
      result.converged = true;
      result.root = x;
      result.f_at_root = f(x);
      return result;
    }
  }
  return result;
}

RootResult brent(const Fn& f, double lo, double hi,
                 const RootOptions& options) {
  RootResult result;
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return {true, a, 0.0, 0};
  if (fb == 0.0) return {true, b, 0.0, 0};
  if ((fa < 0.0) == (fb < 0.0)) return result;

  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;

  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    double s;
    if (fa != fc && fb != fc) {
      // inverse quadratic interpolation
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // secant
      s = b - fb * (b - a) / (fb - fa);
    }
    const double mid = 0.5 * (a + b);
    const bool cond1 = (s < std::min(mid, b) || s > std::max(mid, b));
    const bool cond2 = mflag && std::fabs(s - b) >= std::fabs(b - c) / 2.0;
    const bool cond3 = !mflag && std::fabs(s - b) >= std::fabs(c - d) / 2.0;
    const bool cond4 = mflag && std::fabs(b - c) < options.x_tolerance;
    const bool cond5 = !mflag && std::fabs(c - d) < options.x_tolerance;
    if (cond1 || cond2 || cond3 || cond4 || cond5) {
      s = mid;
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if ((fa < 0.0) != (fs < 0.0)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
    if (fb == 0.0 || std::fabs(b - a) <= options.x_tolerance ||
        (options.f_tolerance > 0.0 && std::fabs(fb) <= options.f_tolerance)) {
      result.converged = true;
      result.root = b;
      result.f_at_root = fb;
      return result;
    }
  }
  result.converged = true;
  result.root = b;
  result.f_at_root = fb;
  return result;
}

}  // namespace mlcr::num
