#include "num/least_squares.h"

#include <cmath>

#include "common/error.h"

namespace mlcr::num {

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  MLCR_EXPECT(a.size() == n * n, "solve_linear_system: shape mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // partial pivot
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (a[pivot * n + col] == 0.0) return {};
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[pivot * n + k], a[col * n + k]);
      }
      std::swap(b[pivot], b[col]);
    }
    const double d = a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / d;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i * n + k] * x[k];
    if (a[i * n + i] == 0.0) return {};
    x[i] = sum / a[i * n + i];
  }
  return x;
}

FitResult linear_least_squares(std::span<const double> design,
                               std::size_t columns,
                               std::span<const double> y) {
  FitResult result;
  const std::size_t rows = y.size();
  if (columns == 0 || rows < columns || design.size() != rows * columns) {
    return result;
  }
  // Normal equations: (X^T X) beta = X^T y.
  std::vector<double> xtx(columns * columns, 0.0);
  std::vector<double> xty(columns, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < columns; ++i) {
      const double xi = design[r * columns + i];
      xty[i] += xi * y[r];
      for (std::size_t j = 0; j < columns; ++j) {
        xtx[i * columns + j] += xi * design[r * columns + j];
      }
    }
  }
  std::vector<double> beta = solve_linear_system(std::move(xtx), std::move(xty));
  if (beta.empty()) return result;

  double rss = 0.0;
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(rows);
  double tss = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    double pred = 0.0;
    for (std::size_t i = 0; i < columns; ++i) {
      pred += beta[i] * design[r * columns + i];
    }
    rss += (y[r] - pred) * (y[r] - pred);
    tss += (y[r] - mean) * (y[r] - mean);
  }
  result.ok = true;
  result.coefficients = std::move(beta);
  result.residual_sum_squares = rss;
  result.r_squared = tss > 0.0 ? 1.0 - rss / tss : 1.0;
  return result;
}

FitResult fit_polynomial(std::span<const double> x, std::span<const double> y,
                         int degree) {
  MLCR_EXPECT(x.size() == y.size(), "fit_polynomial: size mismatch");
  MLCR_EXPECT(degree >= 0, "fit_polynomial: negative degree");
  const std::size_t columns = static_cast<std::size_t>(degree) + 1;
  std::vector<double> design(x.size() * columns);
  for (std::size_t r = 0; r < x.size(); ++r) {
    double p = 1.0;
    for (std::size_t c = 0; c < columns; ++c) {
      design[r * columns + c] = p;
      p *= x[r];
    }
  }
  return linear_least_squares(design, columns, y);
}

FitResult fit_affine_in(std::span<const double> h, std::span<const double> y) {
  MLCR_EXPECT(h.size() == y.size(), "fit_affine_in: size mismatch");
  // Degenerate case: h identically zero -> eps = mean(y), alpha = 0.
  bool all_zero = true;
  for (double v : h) {
    if (v != 0.0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) {
    FitResult result;
    double mean = 0.0;
    for (double v : y) mean += v;
    mean /= y.empty() ? 1.0 : static_cast<double>(y.size());
    double rss = 0.0;
    for (double v : y) rss += (v - mean) * (v - mean);
    result.ok = !y.empty();
    result.coefficients = {mean, 0.0};
    result.residual_sum_squares = rss;
    result.r_squared = rss == 0.0 ? 1.0 : 0.0;
    return result;
  }
  std::vector<double> design(h.size() * 2);
  for (std::size_t r = 0; r < h.size(); ++r) {
    design[r * 2] = 1.0;
    design[r * 2 + 1] = h[r];
  }
  return linear_least_squares(design, 2, y);
}

FitResult fit_quadratic_through_origin(std::span<const double> n,
                                       std::span<const double> g) {
  MLCR_EXPECT(n.size() == g.size(), "fit_quadratic_through_origin: size mismatch");
  std::vector<double> design(n.size() * 2);
  for (std::size_t r = 0; r < n.size(); ++r) {
    design[r * 2] = n[r];
    design[r * 2 + 1] = n[r] * n[r];
  }
  return linear_least_squares(design, 2, g);
}

}  // namespace mlcr::num
