// A from-scratch multilevel checkpoint/restart library in the mold of FTI
// (paper reference [13]), running on the virtual cluster:
//
//   level 1 — node-local store write (survives software faults);
//   level 2 — local write + full copy on the partner node (survives
//             non-adjacent node failures);
//   level 3 — local write + Reed-Solomon group encoding over GF(2^8)
//             (survives up to parity_shards/2 node losses per group, since
//             one node loss costs its data shard plus one parity shard);
//   level 4 — parallel file system write (survives anything).
//
// Checkpoints are collective (every rank calls with the same level); level
// 3 synchronizes each encoding group internally, performs a REAL
// Reed-Solomon encode over the ranks' payload bytes, and distributes parity
// shards cyclically across the group's nodes.  restore() walks checkpoint
// records from newest to oldest and returns the first bit-exact recoverable
// payload, reconstructing lost shards from partners or parity as needed.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "rs/reed_solomon.h"
#include "vmpi/comm.h"
#include "vmpi/engine.h"
#include "vmpi/task.h"

namespace mlcr::fti {

struct FtiConfig {
  int parity_shards = 2;          ///< per RS group (tolerates m/2 node losses)
  double encode_bandwidth = 1e9;  ///< bytes/s of RS encode/decode compute
  vmpi::NetworkModel network;     ///< partner/RS transfer cost model
};

/// One collective checkpoint instance.
struct CheckpointRecord {
  int version = 0;
  int level = 0;  ///< 1..4
};

class Fti {
 public:
  Fti(vmpi::Engine& engine, cluster::Cluster& cluster, FtiConfig config);

  /// Collective checkpoint: every rank must call with the same `level`
  /// (1..4).  Returns when this rank's contribution is durable.
  [[nodiscard]] vmpi::Task<void> checkpoint(int rank, int level,
                                            cluster::Payload data);

  /// Restores the most recent recoverable payload for `rank`, trying
  /// records from newest to oldest.  Lost level-2 data is re-fetched from
  /// the partner node; lost level-3 shards are rebuilt by a real
  /// Reed-Solomon reconstruction from the surviving group members.
  [[nodiscard]] vmpi::Task<std::optional<cluster::Payload>> restore(int rank);

  /// Attempts recovery of one specific checkpoint record for `rank`.
  /// Coordinated restarts use this to find the newest record recoverable by
  /// EVERY rank (a per-rank "newest recoverable" would mix iterations).
  [[nodiscard]] vmpi::Task<std::optional<cluster::Payload>> restore_record(
      int rank, const CheckpointRecord& record);

  /// Checkpoint history, oldest first.
  [[nodiscard]] const std::vector<CheckpointRecord>& records() const noexcept {
    return records_;
  }

  /// Garbage collection: keeps the newest `keep_last` checkpoint records
  /// and deletes the storage objects of everything older (FTI similarly
  /// retires superseded checkpoints to bound device usage).  Instant
  /// metadata operation.
  void prune(int keep_last);

  /// Total stored objects across all node-local stores and the PFS — the
  /// footprint prune() bounds.
  [[nodiscard]] std::size_t stored_objects() const;

  /// The group of ranks that share one RS encoding (node-disjoint: rank
  /// slots aligned across `rs_group_size` consecutive nodes).
  [[nodiscard]] std::vector<int> rs_rank_group(int rank) const;

 private:
  struct GroupStage {
    int arrived = 0;
    std::map<int, cluster::Payload> payloads;  // by rank
    std::vector<std::coroutine_handle<>> waiters;
  };

  [[nodiscard]] static std::string key(int level, int version, int rank);
  [[nodiscard]] static std::string parity_key(int version,
                                              const std::string& group_tag,
                                              int shard);
  [[nodiscard]] std::string group_tag(int rank) const;

  [[nodiscard]] vmpi::Task<void> checkpoint_l1(int rank, int version,
                                               cluster::Payload data);
  [[nodiscard]] vmpi::Task<void> checkpoint_l2(int rank, int version,
                                               cluster::Payload data);
  [[nodiscard]] vmpi::Task<void> checkpoint_l3(int rank, int version,
                                               cluster::Payload data);
  [[nodiscard]] vmpi::Task<void> checkpoint_l4(int rank, int version,
                                               cluster::Payload data);

  [[nodiscard]] vmpi::Task<std::optional<cluster::Payload>> try_restore(
      int rank, const CheckpointRecord& record);
  [[nodiscard]] vmpi::Task<std::optional<cluster::Payload>> restore_l3(
      int rank, int version);

  /// Geometry of one group encoding, kept as library metadata (real FTI
  /// stores this in per-checkpoint metadata files that survive failures).
  struct GroupMeta {
    std::size_t shard_size = 0;
    std::uint64_t logical_size = 0;
    std::map<int, std::size_t> original_sizes;  // by rank
    std::map<int, std::uint64_t> logical_sizes;
  };

  vmpi::Engine& engine_;
  cluster::Cluster& cluster_;
  FtiConfig config_;
  int next_version_ = 1;
  int current_version_ = 0;
  int round_arrivals_ = 0;
  std::vector<CheckpointRecord> records_;
  std::map<std::string, GroupStage> stages_;  // keyed by group_tag + version
  std::map<std::string, GroupMeta> group_meta_;
};

/// Awaitable that suspends the caller and stores the handle in `slot`.
struct StageWait {
  std::vector<std::coroutine_handle<>>* waiters;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    waiters->push_back(handle);
  }
  void await_resume() const noexcept {}
};

}  // namespace mlcr::fti
