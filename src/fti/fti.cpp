#include "fti/fti.h"

#include <algorithm>

#include "common/error.h"
#include "common/table.h"

namespace mlcr::fti {

Fti::Fti(vmpi::Engine& engine, cluster::Cluster& cluster, FtiConfig config)
    : engine_(engine), cluster_(cluster), config_(std::move(config)) {
  MLCR_EXPECT(config_.parity_shards >= 1, "Fti: need at least one parity");
  MLCR_EXPECT(config_.encode_bandwidth > 0.0, "Fti: bad encode bandwidth");
}

std::string Fti::key(int level, int version, int rank) {
  return common::strf("L%d/v%d/r%d", level, version, rank);
}

std::string Fti::parity_key(int version, const std::string& group_tag,
                            int shard) {
  return common::strf("L3par/v%d/%s/p%d", version, group_tag.c_str(), shard);
}

std::vector<int> Fti::rs_rank_group(int rank) const {
  const int rpn = cluster_.config().ranks_per_node;
  const int slot = rank % rpn;
  const int node = cluster_.node_of_rank(rank);
  const int group = cluster_.rs_group_of(node);
  std::vector<int> members;
  for (int member_node : cluster_.rs_group_members(group)) {
    members.push_back(member_node * rpn + slot);
  }
  return members;
}

std::string Fti::group_tag(int rank) const {
  const int rpn = cluster_.config().ranks_per_node;
  return common::strf("g%d_s%d",
                      cluster_.rs_group_of(cluster_.node_of_rank(rank)),
                      rank % rpn);
}

vmpi::Task<void> Fti::checkpoint(int rank, int level, cluster::Payload data) {
  MLCR_EXPECT(level >= 1 && level <= 4, "Fti: level must be 1..4");
  MLCR_EXPECT(rank >= 0 && rank < cluster_.rank_count(),
              "Fti: rank out of range");
  // Collective round bookkeeping: the first caller opens a round and fixes
  // its version; the round closes when every rank has called.
  if (round_arrivals_ == 0) {
    current_version_ = next_version_++;
    records_.push_back(CheckpointRecord{current_version_, level});
  }
  MLCR_EXPECT(records_.back().level == level,
              "Fti: mismatched level within one collective checkpoint");
  const int version = current_version_;
  if (++round_arrivals_ == cluster_.rank_count()) round_arrivals_ = 0;

  switch (level) {
    case 1: co_await checkpoint_l1(rank, version, std::move(data)); break;
    case 2: co_await checkpoint_l2(rank, version, std::move(data)); break;
    case 3: co_await checkpoint_l3(rank, version, std::move(data)); break;
    default: co_await checkpoint_l4(rank, version, std::move(data)); break;
  }
}

vmpi::Task<void> Fti::checkpoint_l1(int rank, int version,
                                    cluster::Payload data) {
  auto& store = cluster_.node(cluster_.node_of_rank(rank)).store();
  co_await store.write(engine_, key(1, version, rank), std::move(data));
}

vmpi::Task<void> Fti::checkpoint_l2(int rank, int version,
                                    cluster::Payload data) {
  const int node = cluster_.node_of_rank(rank);
  const int partner = cluster_.partner_of(node);
  // Local copy first, then ship a replica to the partner node.
  co_await cluster_.node(node).store().write(engine_, key(2, version, rank),
                                             data);
  co_await engine_.sleep(config_.network.transfer_time(data.cost_size()));
  co_await cluster_.node(partner).store().write(
      engine_, common::strf("L2copy/v%d/r%d", version, rank),
      std::move(data));
}

vmpi::Task<void> Fti::checkpoint_l3(int rank, int version,
                                    cluster::Payload data) {
  const int node = cluster_.node_of_rank(rank);
  // Everyone persists their own data shard locally first.
  co_await cluster_.node(node).store().write(engine_, key(3, version, rank),
                                             data);

  // Group staging: the last member to arrive performs the encode for the
  // whole group and releases everyone.
  const std::string tag = group_tag(rank) + common::strf("/v%d", version);
  const auto members = rs_rank_group(rank);
  GroupStage& stage = stages_[tag];
  stage.payloads[rank] = std::move(data);
  ++stage.arrived;

  if (stage.arrived < static_cast<int>(members.size())) {
    co_await StageWait{&stage.waiters};
    co_return;
  }

  // Last arriver: real Reed-Solomon encode over the staged bytes.
  const int k = static_cast<int>(members.size());
  const int m = config_.parity_shards;
  std::size_t shard_size = 0;
  std::uint64_t logical = 0;
  for (const auto& [r, payload] : stage.payloads) {
    shard_size = std::max(shard_size, payload.bytes.size());
    logical = std::max<std::uint64_t>(logical, payload.cost_size());
  }
  shard_size = std::max<std::size_t>(shard_size, 1);

  std::vector<std::vector<std::uint8_t>> shards(
      static_cast<std::size_t>(k + m));
  for (int i = 0; i < k; ++i) {
    auto& shard = shards[static_cast<std::size_t>(i)];
    shard = stage.payloads[members[static_cast<std::size_t>(i)]].bytes;
    shard.resize(shard_size, 0);
  }
  for (int i = 0; i < m; ++i) {
    shards[static_cast<std::size_t>(k + i)].resize(shard_size);
  }
  rs::ReedSolomon code(k, m);
  code.encode(shards);

  // Cost model: gather (k-1 shards to the encoder), the encode itself, and
  // scatter of m parity shards — a makespan charged to the whole group.
  const double gather =
      (k - 1) * config_.network.transfer_time(static_cast<std::size_t>(logical));
  const double encode = static_cast<double>(k) *
                        static_cast<double>(logical) /
                        config_.encode_bandwidth;
  const double scatter =
      m * config_.network.transfer_time(static_cast<std::size_t>(logical));
  co_await engine_.sleep(gather + encode + scatter);

  // Persist parity shards cyclically across the member nodes.
  for (int i = 0; i < m; ++i) {
    const int holder_rank = members[static_cast<std::size_t>(i % k)];
    const int holder_node = cluster_.node_of_rank(holder_rank);
    cluster::Payload parity;
    parity.bytes = std::move(shards[static_cast<std::size_t>(k + i)]);
    parity.logical_size = logical;
    co_await cluster_.node(holder_node).store().write(
        engine_, parity_key(version, group_tag(rank), i), std::move(parity));
  }

  // Record geometry for reconstruction.
  GroupMeta meta;
  meta.shard_size = shard_size;
  meta.logical_size = logical;
  for (const auto& [r, payload] : stage.payloads) {
    meta.original_sizes[r] = payload.bytes.size();
    meta.logical_sizes[r] = payload.cost_size();
  }
  group_meta_[tag] = std::move(meta);

  auto waiters = std::move(stage.waiters);
  stages_.erase(tag);
  for (auto handle : waiters) engine_.schedule(0.0, handle);
}

vmpi::Task<void> Fti::checkpoint_l4(int rank, int version,
                                    cluster::Payload data) {
  co_await cluster_.pfs().write(engine_, key(4, version, rank),
                                std::move(data));
}

void Fti::prune(int keep_last) {
  MLCR_EXPECT(keep_last >= 1, "Fti::prune: must keep at least one record");
  if (static_cast<int>(records_.size()) <= keep_last) return;
  const std::size_t drop = records_.size() - static_cast<std::size_t>(keep_last);
  const int rpn = cluster_.config().ranks_per_node;
  for (std::size_t i = 0; i < drop; ++i) {
    const CheckpointRecord& record = records_[i];
    for (int rank = 0; rank < cluster_.rank_count(); ++rank) {
      const int node = cluster_.node_of_rank(rank);
      auto& store = cluster_.node(node).store();
      store.erase(key(record.level, record.version, rank));
      if (record.level == 2) {
        cluster_.node(cluster_.partner_of(node))
            .store()
            .erase(common::strf("L2copy/v%d/r%d", record.version, rank));
      }
      if (record.level == 4) {
        cluster_.pfs().erase(key(4, record.version, rank));
      }
    }
    if (record.level == 3) {
      // Parity shards + group metadata, per (group, slot).
      for (int node = 0; node < cluster_.node_count();
           node += cluster_.config().rs_group_size) {
        for (int slot = 0; slot < rpn; ++slot) {
          const int rank = node * rpn + slot;
          if (rank >= cluster_.rank_count()) continue;
          const auto members = rs_rank_group(rank);
          for (int p = 0; p < config_.parity_shards; ++p) {
            const int holder = cluster_.node_of_rank(
                members[static_cast<std::size_t>(
                    p % static_cast<int>(members.size()))]);
            cluster_.node(holder).store().erase(
                parity_key(record.version, group_tag(rank), p));
          }
          group_meta_.erase(group_tag(rank) +
                            common::strf("/v%d", record.version));
        }
      }
    }
  }
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(drop));
}

std::size_t Fti::stored_objects() const {
  std::size_t total = cluster_.pfs().object_count();
  for (int node = 0; node < cluster_.node_count(); ++node) {
    total += cluster_.node(node).store().object_count();
  }
  return total;
}

vmpi::Task<std::optional<cluster::Payload>> Fti::restore(int rank) {
  // Newest first; the first recoverable record wins.
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    auto restored = co_await try_restore(rank, *it);
    if (restored.has_value()) co_return restored;
  }
  co_return std::nullopt;
}

vmpi::Task<std::optional<cluster::Payload>> Fti::restore_record(
    int rank, const CheckpointRecord& record) {
  co_return co_await try_restore(rank, record);
}

vmpi::Task<std::optional<cluster::Payload>> Fti::try_restore(
    int rank, const CheckpointRecord& record) {
  const int node = cluster_.node_of_rank(rank);
  switch (record.level) {
    case 1: {
      co_return co_await cluster_.node(node).store().read(
          engine_, key(1, record.version, rank));
    }
    case 2: {
      auto local = co_await cluster_.node(node).store().read(
          engine_, key(2, record.version, rank));
      if (local.has_value()) co_return local;
      // Fetch the replica back from the partner node.
      const int partner = cluster_.partner_of(node);
      auto remote = co_await cluster_.node(partner).store().read(
          engine_, common::strf("L2copy/v%d/r%d", record.version, rank));
      if (remote.has_value()) {
        co_await engine_.sleep(
            config_.network.transfer_time(remote->cost_size()));
      }
      co_return remote;
    }
    case 3:
      co_return co_await restore_l3(rank, record.version);
    default: {
      co_return co_await cluster_.pfs().read(engine_,
                                             key(4, record.version, rank));
    }
  }
}

vmpi::Task<std::optional<cluster::Payload>> Fti::restore_l3(int rank,
                                                            int version) {
  const int node = cluster_.node_of_rank(rank);
  // Fast path: the local shard survived.
  auto local = co_await cluster_.node(node).store().read(
      engine_, key(3, version, rank));
  if (local.has_value()) co_return local;

  const std::string tag = group_tag(rank) + common::strf("/v%d", version);
  const auto meta_it = group_meta_.find(tag);
  if (meta_it == group_meta_.end()) co_return std::nullopt;
  const GroupMeta& meta = meta_it->second;

  const auto members = rs_rank_group(rank);
  const int k = static_cast<int>(members.size());
  const int m = config_.parity_shards;
  std::vector<std::vector<std::uint8_t>> shards(
      static_cast<std::size_t>(k + m));
  std::vector<bool> present(static_cast<std::size_t>(k + m), false);

  double gather_cost = 0.0;
  for (int i = 0; i < k; ++i) {
    const int member = members[static_cast<std::size_t>(i)];
    auto shard = co_await cluster_.node(cluster_.node_of_rank(member))
                     .store()
                     .read(engine_, key(3, version, member));
    if (shard.has_value()) {
      auto padded = std::move(shard->bytes);
      padded.resize(meta.shard_size, 0);
      shards[static_cast<std::size_t>(i)] = std::move(padded);
      present[static_cast<std::size_t>(i)] = true;
      gather_cost += config_.network.transfer_time(
          static_cast<std::size_t>(meta.logical_size));
    }
  }
  for (int i = 0; i < m; ++i) {
    const int holder_rank = members[static_cast<std::size_t>(i % k)];
    const int holder_node = cluster_.node_of_rank(holder_rank);
    auto parity = co_await cluster_.node(holder_node).store().read(
        engine_, parity_key(version, group_tag(rank), i));
    if (parity.has_value()) {
      shards[static_cast<std::size_t>(k + i)] = std::move(parity->bytes);
      present[static_cast<std::size_t>(k + i)] = true;
      gather_cost += config_.network.transfer_time(
          static_cast<std::size_t>(meta.logical_size));
    } else {
      shards[static_cast<std::size_t>(k + i)].resize(meta.shard_size);
    }
  }
  for (int i = 0; i < k; ++i) {
    if (!present[static_cast<std::size_t>(i)]) {
      shards[static_cast<std::size_t>(i)].resize(meta.shard_size);
    }
  }

  rs::ReedSolomon code(k, m);
  if (!code.reconstruct(shards, present)) co_return std::nullopt;

  const double decode = static_cast<double>(k) *
                        static_cast<double>(meta.logical_size) /
                        config_.encode_bandwidth;
  co_await engine_.sleep(gather_cost + decode);

  // Locate this rank's shard and trim the padding.
  int index = -1;
  for (int i = 0; i < k; ++i) {
    if (members[static_cast<std::size_t>(i)] == rank) index = i;
  }
  MLCR_EXPECT(index >= 0, "Fti: rank not in its own RS group");
  cluster::Payload payload;
  payload.bytes = std::move(shards[static_cast<std::size_t>(index)]);
  const auto size_it = meta.original_sizes.find(rank);
  if (size_it != meta.original_sizes.end()) {
    payload.bytes.resize(size_it->second);
  }
  const auto logical_it = meta.logical_sizes.find(rank);
  payload.logical_size =
      logical_it != meta.logical_sizes.end() ? logical_it->second : 0;
  co_return payload;
}

}  // namespace mlcr::fti
