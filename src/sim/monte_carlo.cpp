#include "sim/monte_carlo.h"

#include "common/error.h"

namespace mlcr::sim {

model::TimePortions MonteCarloResult::mean_portions() const {
  model::TimePortions portions;
  portions.productive = productive.mean();
  portions.checkpoint = checkpoint.mean();
  portions.restart = restart.mean();
  portions.rollback = rollback.mean();
  return portions;
}

MonteCarloResult monte_carlo(const model::SystemConfig& cfg,
                             const Schedule& schedule,
                             const MonteCarloOptions& options) {
  MLCR_EXPECT(options.runs > 0, "monte_carlo: runs must be positive");
  MonteCarloResult result;
  for (int run = 0; run < options.runs; ++run) {
    common::Rng rng(options.seed, static_cast<std::uint64_t>(run));
    const RunResult r = simulate(cfg, schedule, rng, options.sim);
    if (!r.completed) {
      ++result.incomplete_runs;
      continue;
    }
    result.wallclock.add(r.wallclock);
    result.productive.add(r.portions.productive);
    result.checkpoint.add(r.portions.checkpoint);
    result.restart.add(r.portions.restart);
    result.rollback.add(r.portions.rollback);
    result.efficiency.add(
        model::efficiency(cfg.te(), r.wallclock, schedule.scale));
    long failures = 0;
    for (long f : r.failures_per_level) failures += f;
    result.failures.add(static_cast<double>(failures));
  }
  return result;
}

}  // namespace mlcr::sim
