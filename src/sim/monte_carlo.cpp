#include "sim/monte_carlo.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <future>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace mlcr::sim {

namespace {

/// Per-metric SoA staging for one chunk: completed replicas land in
/// contiguous arrays so the Welford fold is a batched add_batch per metric
/// (vectorizable reductions) instead of seven interleaved scalar adds per
/// replica.
struct ChunkBuffers {
  std::array<double, kMinChunk> wallclock;
  std::array<double, kMinChunk> productive;
  std::array<double, kMinChunk> checkpoint;
  std::array<double, kMinChunk> restart;
  std::array<double, kMinChunk> rollback;
  std::array<double, kMinChunk> efficiency;
  std::array<double, kMinChunk> failures;
};

/// The coarse replica kernel: stateless, so the driver's worker sharing is
/// trivially safe, and a direct simulate_into call keeps the serial hot
/// path free of any std::function indirection.
struct CoarseKernel {
  const model::SystemConfig& cfg;
  const Schedule& schedule;
  const SimOptions& sim;
  const RunResult& operator()(std::uint64_t /*run*/, common::Rng& rng,
                              SimWorkspace& ws) const {
    return simulate_into(cfg, schedule, rng, sim, ws);
  }
};

/// Runs chunks [first_chunk, last_chunk) into their fixed slots of
/// `chunks`, reusing one generator, one simulator workspace, and one set of
/// staging buffers across every replica of the span.  Replica `run` always
/// draws from the counter-based stream (seed, run) — reseeding the shared
/// generator is bit-identical to constructing Rng(seed, run) — so the span
/// grouping can follow the thread count while each chunk's accumulator
/// stays a pure function of its replicas.
template <typename Kernel>
void run_span(const model::SystemConfig& cfg, const Schedule& schedule,
              const MonteCarloOptions& options, const Kernel& kernel,
              int first_chunk, int last_chunk, MonteCarloResult* chunks) {
  common::Rng rng;
  SimWorkspace ws;
  ChunkBuffers buf;
  for (int c = first_chunk; c < last_chunk; ++c) {
    const int begin = c * kMinChunk;
    const int end = std::min(options.runs, begin + kMinChunk);
    MonteCarloResult& chunk = chunks[c];
    int completed = 0;
    for (int run = begin; run < end; ++run) {
      rng.reseed(options.seed, static_cast<std::uint64_t>(run));
      const RunResult& r = kernel(static_cast<std::uint64_t>(run), rng, ws);
      if (!r.completed) {
        ++chunk.incomplete_runs;
        continue;
      }
      buf.wallclock[completed] = r.wallclock;
      buf.productive[completed] = r.portions.productive;
      buf.checkpoint[completed] = r.portions.checkpoint;
      buf.restart[completed] = r.portions.restart;
      buf.rollback[completed] = r.portions.rollback;
      buf.efficiency[completed] =
          model::efficiency(cfg.te(), r.wallclock, schedule.scale);
      long failures = 0;
      for (long f : r.failures_per_level) failures += f;
      buf.failures[completed] = static_cast<double>(failures);
      ++completed;
    }
    const auto m = static_cast<std::size_t>(completed);
    chunk.wallclock.add_batch(buf.wallclock.data(), m);
    chunk.productive.add_batch(buf.productive.data(), m);
    chunk.checkpoint.add_batch(buf.checkpoint.data(), m);
    chunk.restart.add_batch(buf.restart.data(), m);
    chunk.rollback.add_batch(buf.rollback.data(), m);
    chunk.efficiency.add_batch(buf.efficiency.data(), m);
    chunk.failures.add_batch(buf.failures.data(), m);
  }
}

/// Merges one chunk into the aggregate.  Chunks are always merged in
/// ascending chunk order, so the Welford merge tree is fixed.
void merge_chunk(MonteCarloResult* into, const MonteCarloResult& chunk) {
  into->wallclock.merge(chunk.wallclock);
  into->productive.merge(chunk.productive);
  into->checkpoint.merge(chunk.checkpoint);
  into->restart.merge(chunk.restart);
  into->rollback.merge(chunk.rollback);
  into->efficiency.merge(chunk.efficiency);
  into->failures.merge(chunk.failures);
  into->incomplete_runs += chunk.incomplete_runs;
}

/// Serial execution of the full partition: same chunks, same ascending
/// merge order as any parallel run — bit-identical by construction.
/// Callers validate `options` before entering.
template <typename Kernel>
MonteCarloResult monte_carlo_serial(const model::SystemConfig& cfg,
                                    const Schedule& schedule,
                                    const MonteCarloOptions& options,
                                    const Kernel& kernel) {
  const int nchunks = chunk_count(options.runs);
  std::vector<MonteCarloResult> chunks(static_cast<std::size_t>(nchunks));
  run_span(cfg, schedule, options, kernel, 0, nchunks, chunks.data());
  MonteCarloResult result;
  for (const MonteCarloResult& chunk : chunks) merge_chunk(&result, chunk);
  return result;
}

/// Parallel execution: contiguous chunk spans (~kSpansPerWorker per worker,
/// never smaller than one chunk) are claimed as pool tasks, each writing
/// its chunks into fixed slots; the merge then walks slots in ascending
/// order.  Callers validate `options` and short-circuit trivial widths
/// before entering.
template <typename Kernel>
MonteCarloResult monte_carlo_pooled(const model::SystemConfig& cfg,
                                    const Schedule& schedule,
                                    const MonteCarloOptions& options,
                                    const Kernel& kernel,
                                    common::ThreadPool& pool) {
  // Several spans per worker keep the pool busy when replica durations vary
  // (a span that drains early steals nothing — it just finishes), while a
  // span still covers enough replicas to amortize its submit cost.
  constexpr int kSpansPerWorker = 3;
  const int nchunks = chunk_count(options.runs);
  const int spans = std::min(
      nchunks,
      std::max(1, static_cast<int>(pool.size()) * kSpansPerWorker));
  std::vector<MonteCarloResult> chunks(static_cast<std::size_t>(nchunks));
  std::vector<std::future<void>> tasks;
  tasks.reserve(static_cast<std::size_t>(spans));
  for (int s = 0; s < spans; ++s) {
    const int first = s * nchunks / spans;
    const int last = (s + 1) * nchunks / spans;
    tasks.push_back(pool.submit(
        [&cfg, &schedule, &options, &kernel, first, last, &chunks] {
          run_span(cfg, schedule, options, kernel, first, last, chunks.data());
        }));
  }
  for (std::future<void>& task : tasks) task.get();
  MonteCarloResult result;
  for (const MonteCarloResult& chunk : chunks) merge_chunk(&result, chunk);
  return result;
}

}  // namespace

model::TimePortions MonteCarloResult::mean_portions() const {
  model::TimePortions portions;
  portions.productive = productive.mean();
  portions.checkpoint = checkpoint.mean();
  portions.restart = restart.mean();
  portions.rollback = rollback.mean();
  return portions;
}

void validate(const MonteCarloOptions& options) {
  MLCR_EXPECT(options.runs > 0,
              "MonteCarloOptions: runs must be positive (got " +
                  std::to_string(options.runs) + ")");
  MLCR_EXPECT(options.seed != kSeedSentinel,
              "MonteCarloOptions: seed collides with the reserved sentinel "
              "0xffffffffffffffff");
  MLCR_EXPECT(std::isfinite(options.sim.jitter_ratio) &&
                  options.sim.jitter_ratio >= 0.0 &&
                  options.sim.jitter_ratio < 1.0,
              "MonteCarloOptions: sim.jitter_ratio must be finite in [0, 1)");
  MLCR_EXPECT(options.sim.max_events > 0,
              "MonteCarloOptions: sim.max_events must be positive");
  MLCR_EXPECT(
      std::isfinite(options.sim.weibull_shape) &&
          options.sim.weibull_shape > 0.0,
      "MonteCarloOptions: sim.weibull_shape must be finite and positive");
}

MonteCarloResult monte_carlo(const model::SystemConfig& cfg,
                             const Schedule& schedule,
                             const MonteCarloOptions& options) {
  validate(options);
  const CoarseKernel kernel{cfg, schedule, options.sim};
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads == 1 || options.runs <= kMinChunk) {
    return monte_carlo_serial(cfg, schedule, options, kernel);
  }
  common::ThreadPool pool(threads);
  return monte_carlo_pooled(cfg, schedule, options, kernel, pool);
}

MonteCarloResult monte_carlo(const model::SystemConfig& cfg,
                             const Schedule& schedule,
                             const MonteCarloOptions& options,
                             common::ThreadPool& pool) {
  validate(options);
  const CoarseKernel kernel{cfg, schedule, options.sim};
  if (pool.size() == 1 || options.runs <= kMinChunk) {
    return monte_carlo_serial(cfg, schedule, options, kernel);
  }
  return monte_carlo_pooled(cfg, schedule, options, kernel, pool);
}

MonteCarloResult monte_carlo_kernel(const model::SystemConfig& cfg,
                                    const Schedule& schedule,
                                    const MonteCarloOptions& options,
                                    const ReplicaKernel& kernel,
                                    common::ThreadPool* pool) {
  validate(options);
  if (pool == nullptr || pool->size() == 1 || options.runs <= kMinChunk) {
    return monte_carlo_serial(cfg, schedule, options, kernel);
  }
  return monte_carlo_pooled(cfg, schedule, options, kernel, *pool);
}

}  // namespace mlcr::sim
