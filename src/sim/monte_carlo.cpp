#include "sim/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <string>
#include <vector>

#include "common/error.h"

namespace mlcr::sim {

namespace {

/// Runs replicas [begin, end) into a fresh chunk accumulator.  Replica
/// `run` always draws from the stream (seed, run), independent of which
/// thread executes the chunk.
MonteCarloResult run_chunk(const model::SystemConfig& cfg,
                           const Schedule& schedule,
                           const MonteCarloOptions& options, int begin,
                           int end) {
  MonteCarloResult chunk;
  for (int run = begin; run < end; ++run) {
    common::Rng rng(options.seed, static_cast<std::uint64_t>(run));
    const RunResult r = simulate(cfg, schedule, rng, options.sim);
    if (!r.completed) {
      ++chunk.incomplete_runs;
      continue;
    }
    chunk.wallclock.add(r.wallclock);
    chunk.productive.add(r.portions.productive);
    chunk.checkpoint.add(r.portions.checkpoint);
    chunk.restart.add(r.portions.restart);
    chunk.rollback.add(r.portions.rollback);
    chunk.efficiency.add(
        model::efficiency(cfg.te(), r.wallclock, schedule.scale));
    long failures = 0;
    for (long f : r.failures_per_level) failures += f;
    chunk.failures.add(static_cast<double>(failures));
  }
  return chunk;
}

/// Merges one chunk into the aggregate.  Chunks are always merged in
/// ascending chunk order, so the Welford merge tree is fixed.
void merge_chunk(MonteCarloResult* into, const MonteCarloResult& chunk) {
  into->wallclock.merge(chunk.wallclock);
  into->productive.merge(chunk.productive);
  into->checkpoint.merge(chunk.checkpoint);
  into->restart.merge(chunk.restart);
  into->rollback.merge(chunk.rollback);
  into->efficiency.merge(chunk.efficiency);
  into->failures.merge(chunk.failures);
  into->incomplete_runs += chunk.incomplete_runs;
}

}  // namespace

model::TimePortions MonteCarloResult::mean_portions() const {
  model::TimePortions portions;
  portions.productive = productive.mean();
  portions.checkpoint = checkpoint.mean();
  portions.restart = restart.mean();
  portions.rollback = rollback.mean();
  return portions;
}

void validate(const MonteCarloOptions& options) {
  MLCR_EXPECT(options.runs > 0,
              "MonteCarloOptions: runs must be positive (got " +
                  std::to_string(options.runs) + ")");
  MLCR_EXPECT(options.seed != kSeedSentinel,
              "MonteCarloOptions: seed collides with the reserved sentinel "
              "0xffffffffffffffff");
  MLCR_EXPECT(std::isfinite(options.sim.jitter_ratio) &&
                  options.sim.jitter_ratio >= 0.0 &&
                  options.sim.jitter_ratio < 1.0,
              "MonteCarloOptions: sim.jitter_ratio must be finite in [0, 1)");
  MLCR_EXPECT(options.sim.max_events > 0,
              "MonteCarloOptions: sim.max_events must be positive");
  MLCR_EXPECT(
      std::isfinite(options.sim.weibull_shape) &&
          options.sim.weibull_shape > 0.0,
      "MonteCarloOptions: sim.weibull_shape must be finite and positive");
}

MonteCarloResult monte_carlo(const model::SystemConfig& cfg,
                             const Schedule& schedule,
                             const MonteCarloOptions& options) {
  validate(options);
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads == 1) {
    // Serial path: same chunk partition, same merge order — bit-identical
    // to the pooled path by construction.
    MonteCarloResult result;
    for (int begin = 0; begin < options.runs; begin += kRunsPerChunk) {
      const int end = std::min(options.runs, begin + kRunsPerChunk);
      merge_chunk(&result, run_chunk(cfg, schedule, options, begin, end));
    }
    return result;
  }
  common::ThreadPool pool(threads);
  return monte_carlo(cfg, schedule, options, pool);
}

MonteCarloResult monte_carlo(const model::SystemConfig& cfg,
                             const Schedule& schedule,
                             const MonteCarloOptions& options,
                             common::ThreadPool& pool) {
  validate(options);
  std::vector<std::future<MonteCarloResult>> chunks;
  chunks.reserve(static_cast<std::size_t>(options.runs / kRunsPerChunk) + 1);
  for (int begin = 0; begin < options.runs; begin += kRunsPerChunk) {
    const int end = std::min(options.runs, begin + kRunsPerChunk);
    chunks.push_back(pool.submit([&cfg, &schedule, &options, begin, end] {
      return run_chunk(cfg, schedule, options, begin, end);
    }));
  }
  MonteCarloResult result;
  for (std::future<MonteCarloResult>& chunk : chunks) {
    merge_chunk(&result, chunk.get());
  }
  return result;
}

}  // namespace mlcr::sim
