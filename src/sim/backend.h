// Pluggable validation backends (DESIGN.md §14).  A Backend turns one
// planned schedule into an aggregated Monte-Carlo result; the two
// implementations share the replica driver (chunk partition, span claiming,
// ascending Welford merges) and therefore the same determinism contract:
//
//   coarse  the closed per-level position array of event_sim.cpp — fast,
//           and exactly the paper's Section IV-A simulator;
//   des     the same event loop, but checkpoint commit/rollback answered by
//           the rank-level DES stack (vmpi/cluster/fti with real partner
//           copies and Reed-Solomon rebuilds) via sim::CheckpointMechanics.
//
// Both are pure functions of (config, schedule, options.runs, options.seed,
// options.sim): thread counts and pool sizes never change a bit of the
// result, so service layers can cache reports by request key alone.
#pragma once

#include "common/thread_pool.h"
#include "sim/monte_carlo.h"

namespace mlcr::sim {

class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable lowercase identifier ("coarse", "des"); used in wire payloads,
  /// cache keys and per-backend metric names.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Runs options.runs replicas of `schedule` and aggregates them.  `pool`
  /// may be null (serial).  Throws common::Error on invalid options, like
  /// sim::validate.
  [[nodiscard]] virtual MonteCarloResult run(const model::SystemConfig& cfg,
                                             const Schedule& schedule,
                                             const MonteCarloOptions& options,
                                             common::ThreadPool* pool) const = 0;
};

/// The coarse Monte-Carlo kernel as a Backend (shared instance).
[[nodiscard]] const Backend& coarse_backend() noexcept;

/// The high-fidelity DES replay as a Backend (shared instance); see
/// sim/des_backend.h for the replay semantics.
[[nodiscard]] const Backend& des_backend() noexcept;

}  // namespace mlcr::sim
