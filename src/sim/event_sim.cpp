#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/error.h"

namespace mlcr::sim {

Schedule Schedule::from_plan(const model::SystemConfig& cfg,
                             const model::Plan& plan,
                             const std::vector<bool>& enabled) {
  MLCR_EXPECT(plan.levels() == cfg.levels(), "Schedule: plan/config mismatch");
  MLCR_EXPECT(enabled.size() == cfg.levels(), "Schedule: enabled mask size");
  Schedule schedule;
  schedule.scale = plan.scale;
  const double work = cfg.productive_time(plan.scale);
  schedule.period_seconds.resize(cfg.levels());
  for (std::size_t i = 0; i < cfg.levels(); ++i) {
    // x_i intermediate checkpoints split the work into x_i intervals; x_i
    // rounds to >= 2 to actually place interior checkpoints.
    const double x = std::round(plan.intervals[i]);
    schedule.period_seconds[i] =
        (enabled[i] && x >= 2.0) ? work / x : 0.0;
  }
  return schedule;
}

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A failure that has arrived but not yet been processed.
struct PendingFailure {
  double arrived_at = 0.0;
  std::size_t level = 0;
};

/// The full mutable simulation state.
struct State {
  double now = 0.0;         ///< wall-clock seconds
  double position = 0.0;    ///< current work position (seconds of progress)
  double high_water = 0.0;  ///< furthest position ever reached
  model::TimePortions portions;
  std::vector<double> next_arrival;  ///< per-level Poisson clocks (absolute)
  std::deque<PendingFailure> pending;
};

enum class Portion { kExecution, kCheckpoint, kRestart };

}  // namespace

namespace {

RunResult simulate_impl(const model::SystemConfig& cfg,
                        const Schedule& schedule, common::Rng& rng,
                        const SimOptions& options,
                        const FailureTrace* trace) {
  const std::size_t levels = cfg.levels();
  MLCR_EXPECT(schedule.period_seconds.size() == levels,
              "simulate: schedule/config level mismatch");
  MLCR_EXPECT(schedule.scale > 0.0, "simulate: scale must be positive");
  MLCR_EXPECT(trace == nullptr ||
                  trace->arrivals_per_level.size() == levels,
              "simulate: trace/config level mismatch");
  MLCR_EXPECT(options.weibull_shape > 0.0,
              "simulate: weibull shape must be positive");

  const double n = schedule.scale;
  const double work_target = cfg.productive_time(n);

  RunResult result;
  result.failures_per_level.assign(levels, 0);
  result.checkpoints_per_level.assign(levels, 0);

  State st;
  st.next_arrival.assign(levels, kInfinity);
  // Renewal-process inter-arrival sampler: exponential (paper default) or
  // mean-preserving Weibull.
  std::vector<double> rate(levels, 0.0);
  std::vector<double> weibull_scale(levels, 0.0);
  const bool weibull = options.weibull_shape != 1.0;
  auto draw_gap = [&](std::size_t level) {
    if (!weibull) return rng.exponential(rate[level]);
    const double u = rng.uniform();
    return weibull_scale[level] *
           std::pow(-std::log(1.0 - u), 1.0 / options.weibull_shape);
  };

  std::vector<std::size_t> trace_index(levels, 0);
  for (std::size_t i = 0; i < levels; ++i) {
    if (trace != nullptr) {
      const auto& arrivals = trace->arrivals_per_level[i];
      if (!arrivals.empty()) st.next_arrival[i] = arrivals.front();
      continue;
    }
    rate[i] = cfg.rates().rate_per_second(i, n);
    if (rate[i] > 0.0) {
      if (weibull) {
        // mean = scale * Gamma(1 + 1/shape) = 1/rate.
        weibull_scale[i] =
            1.0 / (rate[i] * std::tgamma(1.0 + 1.0 / options.weibull_shape));
      }
      st.next_arrival[i] = draw_gap(i);
    }
  }
  // Most recent surviving checkpoint position per level; the initial state
  // (position 0) is always recoverable from every level.
  std::vector<double> cp_position(levels, 0.0);

  auto jitter = [&]() {
    return options.jitter_ratio > 0.0
               ? 1.0 + rng.uniform(-options.jitter_ratio, options.jitter_ratio)
               : 1.0;
  };

  // Advances a level's arrival clock past its current arrival.
  auto consume_arrival = [&](std::size_t level) {
    if (trace != nullptr) {
      const auto& arrivals = trace->arrivals_per_level[level];
      const std::size_t next = ++trace_index[level];
      st.next_arrival[level] =
          next < arrivals.size() ? arrivals[next] : kInfinity;
      return;
    }
    st.next_arrival[level] += draw_gap(level);
  };

  auto account = [&](Portion kind, double spent, bool advance_work) {
    switch (kind) {
      case Portion::kExecution: {
        if (advance_work) {
          const double new_position = st.position + spent;
          const double productive_part =
              std::max(0.0, std::min(new_position, work_target) -
                                std::max(st.position, st.high_water));
          st.portions.productive += productive_part;
          st.portions.rollback += spent - productive_part;
          st.position = new_position;
          st.high_water = std::max(st.high_water, st.position);
        } else {
          st.portions.rollback += spent;
        }
        break;
      }
      case Portion::kCheckpoint: {
        // Checkpoint writes below the high-water mark are re-taken ones and
        // count as rollback loss (paper Formula (18)).
        if (st.position < st.high_water - 1e-9) {
          st.portions.rollback += spent;
        } else {
          st.portions.checkpoint += spent;
        }
        break;
      }
      case Portion::kRestart: {
        st.portions.restart += spent;
        break;
      }
    }
  };

  // Elapses `duration` of the given activity, stopping at the first failure
  // arrival inside the window.  Returns true if the activity completed,
  // false if it was interrupted (the arrival is queued in st.pending).
  auto elapse_interruptible = [&](double duration, Portion kind,
                                  bool advance_work) -> bool {
    const double end = st.now + duration;
    std::size_t level = levels;
    double earliest = end;
    for (std::size_t i = 0; i < levels; ++i) {
      if (st.next_arrival[i] < earliest) {
        earliest = st.next_arrival[i];
        level = i;
      }
    }
    const double stop = level < levels ? std::max(earliest, st.now) : end;
    account(kind, stop - st.now, advance_work);
    st.now = stop;
    if (level < levels) {
      st.pending.push_back({earliest, level});
      consume_arrival(level);
      return false;
    }
    return true;
  };

  // Elapses `duration` without interruption (durable checkpoint writes and
  // serial recoveries); arrivals inside the window are queued afterwards in
  // arrival order, preserving the Poisson process.
  auto elapse_uninterruptible = [&](double duration, Portion kind) {
    account(kind, duration, false);
    st.now += duration;
    for (;;) {
      std::size_t level = levels;
      double earliest = st.now;
      for (std::size_t i = 0; i < levels; ++i) {
        if (st.next_arrival[i] <= earliest) {
          earliest = st.next_arrival[i];
          level = i;
        }
      }
      if (level >= levels) break;
      st.pending.push_back({earliest, level});
      consume_arrival(level);
    }
    std::sort(st.pending.begin(), st.pending.end(),
              [](const PendingFailure& a, const PendingFailure& b) {
                return a.arrived_at < b.arrived_at;
              });
  };

  // Next checkpoint trigger strictly beyond the current position; ties go
  // to the highest level (one combined checkpoint).
  auto next_trigger = [&](std::size_t* out_level) -> double {
    double best = kInfinity;
    std::size_t best_level = levels;
    for (std::size_t i = 0; i < levels; ++i) {
      const double period = schedule.period_seconds[i];
      if (period <= 0.0) continue;
      const double k = std::floor(st.position / period + 1e-9) + 1.0;
      const double at = k * period;
      if (at >= work_target - 1e-9) continue;  // no checkpoint at the very end
      if (at < best - 1e-9) {
        best = at;
        best_level = i;
      } else if (std::fabs(at - best) <= 1e-9 && i > best_level) {
        best_level = i;
      }
    }
    *out_level = best_level;
    return best;
  };

  long events = 0;
  while (st.position < work_target - 1e-9) {
    if (++events > options.max_events) return result;  // completed = false

    if (!st.pending.empty()) {
      const PendingFailure failure = st.pending.front();
      st.pending.pop_front();
      const std::size_t j = failure.level;
      ++result.failures_per_level[j];
      // Roll back to the best surviving checkpoint of level >= j.
      double restore = 0.0;
      for (std::size_t k = j; k < levels; ++k) {
        restore = std::max(restore, cp_position[k]);
      }
      // Checkpoints of levels below j are lost by this failure.
      for (std::size_t k = 0; k < j; ++k) {
        cp_position[k] = std::min(cp_position[k], restore);
      }
      st.position = restore;
      const double cost =
          cfg.allocation() + cfg.recovery_cost(j, n) * jitter();
      if (options.serial_recovery) {
        // Paper Formula (1): every failure pays its own A + R_i; failures
        // arriving during a recovery queue up behind it.
        elapse_uninterruptible(cost, Portion::kRestart);
      } else {
        // Collapse mode: a failure arriving during the recovery aborts it
        // (the new failure's own recovery subsumes the remainder).
        (void)elapse_interruptible(cost, Portion::kRestart, false);
      }
      continue;
    }

    std::size_t trigger_level = levels;
    const double trigger_at = next_trigger(&trigger_level);
    const double segment_end = std::min(trigger_at, work_target);

    // Execute up to the next checkpoint (or completion).
    if (!elapse_interruptible(segment_end - st.position, Portion::kExecution,
                              true)) {
      continue;
    }
    if (trigger_level >= levels || st.position >= work_target - 1e-9) break;

    // Take the checkpoint at `trigger_level`.
    ++result.checkpoints_per_level[trigger_level];
    if (st.position < st.high_water - 1e-9) ++result.rolled_back_checkpoints;
    const double cost = cfg.ckpt_cost(trigger_level, n) * jitter();
    if (options.atomic_checkpoints) {
      // Paper-faithful: the write runs to completion at full cost; failures
      // that arrived meanwhile are handled right after (and recover from
      // this very checkpoint when its level covers them).
      elapse_uninterruptible(cost, Portion::kCheckpoint);
      cp_position[trigger_level] = st.position;
    } else {
      // Strict mode: a failure interrupts and discards the in-flight write.
      if (elapse_interruptible(cost, Portion::kCheckpoint, false)) {
        cp_position[trigger_level] = st.position;
      }
    }
  }

  result.completed = st.position >= work_target - 1e-9;
  result.wallclock = st.now;
  result.portions = st.portions;
  return result;
}

}  // namespace

RunResult simulate(const model::SystemConfig& cfg, const Schedule& schedule,
                   common::Rng& rng, const SimOptions& options) {
  return simulate_impl(cfg, schedule, rng, options, nullptr);
}

RunResult simulate_trace(const model::SystemConfig& cfg,
                         const Schedule& schedule, const FailureTrace& trace,
                         common::Rng& rng, const SimOptions& options) {
  return simulate_impl(cfg, schedule, rng, options, &trace);
}

}  // namespace mlcr::sim
