#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace mlcr::sim {

Schedule Schedule::from_plan(const model::SystemConfig& cfg,
                             const model::Plan& plan,
                             const std::vector<bool>& enabled) {
  MLCR_EXPECT(plan.levels() == cfg.levels(), "Schedule: plan/config mismatch");
  MLCR_EXPECT(enabled.size() == cfg.levels(), "Schedule: enabled mask size");
  Schedule schedule;
  schedule.scale = plan.scale;
  const double work = cfg.productive_time(plan.scale);
  schedule.period_seconds.resize(cfg.levels());
  for (std::size_t i = 0; i < cfg.levels(); ++i) {
    // x_i intermediate checkpoints split the work into x_i intervals; x_i
    // rounds to >= 2 to actually place interior checkpoints.
    const double x = std::round(plan.intervals[i]);
    schedule.period_seconds[i] =
        (enabled[i] && x >= 2.0) ? work / x : 0.0;
  }
  return schedule;
}

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Uniforms drawn per rng batch refill.  The batch only changes *when* the
/// generator is pumped, never the value each draw site sees: sites consume
/// the buffer in draw order, so the sequence is identical to one rng call
/// per draw.
constexpr std::size_t kUniformBatch = 64;

enum class Portion { kExecution, kCheckpoint, kRestart };

const RunResult& simulate_impl(const model::SystemConfig& cfg,
                               const Schedule& schedule, common::Rng& rng,
                               const SimOptions& options,
                               const FailureTrace* trace, SimWorkspace& ws,
                               CheckpointMechanics* mechanics = nullptr) {
  const std::size_t levels = cfg.levels();
  MLCR_EXPECT(schedule.period_seconds.size() == levels,
              "simulate: schedule/config level mismatch");
  MLCR_EXPECT(schedule.scale > 0.0, "simulate: scale must be positive");
  MLCR_EXPECT(trace == nullptr ||
                  trace->arrivals_per_level.size() == levels,
              "simulate: trace/config level mismatch");
  MLCR_EXPECT(options.weibull_shape > 0.0,
              "simulate: weibull shape must be positive");

  const double n = schedule.scale;
  const double work_target = cfg.productive_time(n);

  // The result lives in the workspace so a replica sweep reuses its
  // vectors' capacity; assign() below is then allocation-free.
  RunResult& result = ws.result;
  result.completed = false;
  result.wallclock = 0.0;
  result.portions = model::TimePortions{};
  result.rolled_back_checkpoints = 0;
  result.failures_per_level.assign(levels, 0);
  result.checkpoints_per_level.assign(levels, 0);

  // Reset the workspace for this replica.  assign() on retained capacity is
  // allocation-free; the uniform buffer is emptied because the previous
  // replica's stream must never leak into this one.
  ws.next_arrival.assign(levels, kInfinity);
  ws.rate.assign(levels, 0.0);
  ws.weibull_scale.assign(levels, 0.0);
  ws.cp_position.assign(levels, 0.0);
  ws.ckpt_cost.assign(levels, 0.0);
  ws.recovery_cost.assign(levels, 0.0);
  ws.next_ckpt_mult.assign(levels, 1.0);
  ws.next_ckpt_at.assign(levels, kInfinity);
  for (std::size_t i = 0; i < levels; ++i) {
    if (schedule.period_seconds[i] > 0.0) {
      ws.next_ckpt_at[i] = schedule.period_seconds[i];
    }
  }
  ws.trace_index.assign(levels, 0);
  ws.pending.clear();
  // Force a refill on the first draw: the previous replica's tail must
  // never leak into this one.
  ws.uniforms.resize(kUniformBatch);
  ws.uniform_cursor = kUniformBatch;

  double now = 0.0;         // wall-clock seconds
  double position = 0.0;    // current work position (seconds of progress)
  double high_water = 0.0;  // furthest position ever reached
  model::TimePortions portions;
  std::size_t pending_head = 0;  // ws.pending[pending_head..) is live

  // One uniform per draw site, served from a refilled batch.  The batch
  // only changes *when* the generator is pumped, never the value a draw
  // site sees, so the sequence is identical to one rng call per draw.
  auto draw_uniform = [&]() {
    if (ws.uniform_cursor == kUniformBatch) {
      rng.fill_uniform(ws.uniforms.data(), kUniformBatch);
      ws.uniform_cursor = 0;
    }
    return ws.uniforms[ws.uniform_cursor++];
  };

  // Renewal-process inter-arrival sampler: exponential (paper default) or
  // mean-preserving Weibull.
  const bool weibull = options.weibull_shape != 1.0;
  auto draw_gap = [&](std::size_t level) {
    const double u = draw_uniform();
    if (!weibull) return -std::log(1.0 - u) / ws.rate[level];
    return ws.weibull_scale[level] *
           std::pow(-std::log(1.0 - u), 1.0 / options.weibull_shape);
  };

  for (std::size_t i = 0; i < levels; ++i) {
    // Checkpoint/recovery overheads depend only on (level, N) — both fixed
    // for the whole replica — so hoist them out of the event loop (the loop
    // used to recompute the scaling law ~300 times per replica).
    ws.ckpt_cost[i] = cfg.ckpt_cost(i, n);
    ws.recovery_cost[i] = cfg.recovery_cost(i, n);
    if (trace != nullptr) {
      const auto& arrivals = trace->arrivals_per_level[i];
      if (!arrivals.empty()) ws.next_arrival[i] = arrivals.front();
      continue;
    }
    ws.rate[i] = cfg.rates().rate_per_second(i, n);
    if (ws.rate[i] > 0.0) {
      if (weibull) {
        // mean = scale * Gamma(1 + 1/shape) = 1/rate.
        ws.weibull_scale[i] =
            1.0 /
            (ws.rate[i] * std::tgamma(1.0 + 1.0 / options.weibull_shape));
      }
      ws.next_arrival[i] = draw_gap(i);
    }
  }

  auto jitter = [&]() {
    return options.jitter_ratio > 0.0
               ? 1.0 + (-options.jitter_ratio +
                        2.0 * options.jitter_ratio * draw_uniform())
               : 1.0;
  };

  // Advances a level's arrival clock past its current arrival.
  auto consume_arrival = [&](std::size_t level) {
    if (trace != nullptr) {
      const auto& arrivals = trace->arrivals_per_level[level];
      const std::size_t next = ++ws.trace_index[level];
      ws.next_arrival[level] =
          next < arrivals.size() ? arrivals[next] : kInfinity;
      return;
    }
    ws.next_arrival[level] += draw_gap(level);
  };

  // Cached min of ws.next_arrival.  Arrival clocks only move when an
  // arrival is consumed (~once per failure), but the hot loop consults the
  // horizon on every event — caching the value turns two 4-level scans per
  // checkpoint into one comparison.  Only the *value* is cached: the level
  // scans below keep the original per-call tie rules.
  double arrival_min = kInfinity;
  auto recompute_arrival_min = [&]() {
    arrival_min = kInfinity;
    for (std::size_t i = 0; i < levels; ++i) {
      if (ws.next_arrival[i] < arrival_min) arrival_min = ws.next_arrival[i];
    }
  };
  recompute_arrival_min();

  auto account = [&](Portion kind, double spent, bool advance_work) {
    switch (kind) {
      case Portion::kExecution: {
        if (advance_work) {
          const double new_position = position + spent;
          const double productive_part =
              std::max(0.0, std::min(new_position, work_target) -
                                std::max(position, high_water));
          portions.productive += productive_part;
          portions.rollback += spent - productive_part;
          position = new_position;
          high_water = std::max(high_water, position);
        } else {
          portions.rollback += spent;
        }
        break;
      }
      case Portion::kCheckpoint: {
        // Checkpoint writes below the high-water mark are re-taken ones and
        // count as rollback loss (paper Formula (18)).
        if (position < high_water - 1e-9) {
          portions.rollback += spent;
        } else {
          portions.checkpoint += spent;
        }
        break;
      }
      case Portion::kRestart: {
        portions.restart += spent;
        break;
      }
    }
  };

  // Elapses `duration` of the given activity, stopping at the first failure
  // arrival inside the window.  Returns true if the activity completed,
  // false if it was interrupted (the arrival is queued in ws.pending).
  auto elapse_interruptible = [&](double duration, Portion kind,
                                  bool advance_work) -> bool {
    const double end = now + duration;
    if (arrival_min >= end) {  // fast path: window is failure-free
      // `end - now`, not `duration`: the accounted portion must equal the
      // wall-clock advance bit for bit (portions.total() == wallclock).
      account(kind, end - now, advance_work);
      now = end;
      return true;
    }
    std::size_t level = levels;
    double earliest = end;
    for (std::size_t i = 0; i < levels; ++i) {
      if (ws.next_arrival[i] < earliest) {
        earliest = ws.next_arrival[i];
        level = i;
      }
    }
    const double stop = level < levels ? std::max(earliest, now) : end;
    account(kind, stop - now, advance_work);
    now = stop;
    if (level < levels) {
      ws.pending.push_back({earliest, level});
      consume_arrival(level);
      recompute_arrival_min();
      return false;
    }
    return true;
  };

  // Elapses `duration` without interruption (durable checkpoint writes and
  // serial recoveries); arrivals inside the window are queued afterwards in
  // arrival order, preserving the Poisson process.  The min-first append
  // loop emits arrivals in ascending order and every live pending entry
  // predates the window, so the queue stays globally sorted without a sort.
  auto elapse_uninterruptible = [&](double duration, Portion kind) {
    account(kind, duration, false);
    now += duration;
    while (arrival_min <= now) {  // hot case: window is arrival-free
      std::size_t level = levels;
      double earliest = now;
      for (std::size_t i = 0; i < levels; ++i) {
        if (ws.next_arrival[i] <= earliest) {
          earliest = ws.next_arrival[i];
          level = i;
        }
      }
      if (level >= levels) break;
      ws.pending.push_back({earliest, level});
      consume_arrival(level);
      recompute_arrival_min();
    }
  };

  // Next checkpoint trigger strictly beyond the current position; ties go
  // to the highest level (one combined checkpoint).  Instead of re-deriving
  // the trigger multiple k_i = floor(position/tau_i + eps) + 1 with a
  // divide + floor per level per event, k_i — and its cached product
  // next_ckpt_at[i] = k_i * tau_i — is carried incrementally in the
  // workspace: advanced while its trigger falls behind the position (at
  // most one step per checkpoint taken), re-derived from scratch only on
  // rollback.  Disabled levels park at infinity, so the scan is branch-light.
  auto next_trigger = [&](std::size_t* out_level) -> double {
    double best = kInfinity;
    std::size_t best_level = levels;
    for (std::size_t i = 0; i < levels; ++i) {
      double at = ws.next_ckpt_at[i];
      if (at == kInfinity) continue;
      const double period = schedule.period_seconds[i];
      while (at <= position + 1e-9 * period) {
        ws.next_ckpt_mult[i] += 1.0;
        at = ws.next_ckpt_mult[i] * period;
        ws.next_ckpt_at[i] = at;
      }
      if (at >= work_target - 1e-9) continue;  // no checkpoint at the very end
      if (at < best - 1e-9) {
        best = at;
        best_level = i;
      } else if (std::fabs(at - best) <= 1e-9 && i > best_level) {
        best_level = i;
      }
    }
    *out_level = best_level;
    return best;
  };

  long events = 0;
  while (position < work_target - 1e-9) {
    if (++events > options.max_events) return result;  // completed = false

    if (pending_head < ws.pending.size()) {
      const SimWorkspace::PendingFailure failure = ws.pending[pending_head];
      ++pending_head;
      const std::size_t j = failure.level;
      ++result.failures_per_level[j];
      double restore = 0.0;
      if (mechanics != nullptr) {
        // The mechanics backend owns the record state: it damages the
        // stored objects and reports what is actually recoverable.
        restore = mechanics->failed(j);
      } else {
        // Roll back to the best surviving checkpoint of level >= j.
        for (std::size_t k = j; k < levels; ++k) {
          restore = std::max(restore, ws.cp_position[k]);
        }
        // Checkpoints of levels below j are lost by this failure.
        for (std::size_t k = 0; k < j; ++k) {
          ws.cp_position[k] = std::min(ws.cp_position[k], restore);
        }
      }
      position = restore;
      // The position moved backwards: re-derive the trigger multiples.
      for (std::size_t k = 0; k < levels; ++k) {
        const double period = schedule.period_seconds[k];
        if (period > 0.0) {
          ws.next_ckpt_mult[k] =
              std::floor(position / period + 1e-9) + 1.0;
          ws.next_ckpt_at[k] = ws.next_ckpt_mult[k] * period;
        }
      }
      const double cost =
          cfg.allocation() + ws.recovery_cost[j] * jitter();
      if (options.serial_recovery) {
        // Paper Formula (1): every failure pays its own A + R_i; failures
        // arriving during a recovery queue up behind it.
        elapse_uninterruptible(cost, Portion::kRestart);
      } else {
        // Collapse mode: a failure arriving during the recovery aborts it
        // (the new failure's own recovery subsumes the remainder).
        (void)elapse_interruptible(cost, Portion::kRestart, false);
      }
      continue;
    }
    if (pending_head > 0) {
      ws.pending.clear();
      pending_head = 0;
    }

    std::size_t trigger_level = levels;
    const double trigger_at = next_trigger(&trigger_level);
    const double segment_end = std::min(trigger_at, work_target);

    // Execute up to the next checkpoint (or completion).
    if (!elapse_interruptible(segment_end - position, Portion::kExecution,
                              true)) {
      continue;
    }
    if (trigger_level >= levels || position >= work_target - 1e-9) break;

    // Take the checkpoint at `trigger_level`.
    ++result.checkpoints_per_level[trigger_level];
    if (position < high_water - 1e-9) ++result.rolled_back_checkpoints;
    auto commit = [&](std::size_t level) {
      if (mechanics != nullptr) mechanics->committed(level, position);
      else ws.cp_position[level] = position;
    };
    const double cost = ws.ckpt_cost[trigger_level] * jitter();
    if (options.atomic_checkpoints) {
      // Paper-faithful: the write runs to completion at full cost; failures
      // that arrived meanwhile are handled right after (and recover from
      // this very checkpoint when its level covers them).
      elapse_uninterruptible(cost, Portion::kCheckpoint);
      commit(trigger_level);
    } else {
      // Strict mode: a failure interrupts and discards the in-flight write.
      if (elapse_interruptible(cost, Portion::kCheckpoint, false)) {
        commit(trigger_level);
      }
    }
  }

  result.completed = position >= work_target - 1e-9;
  result.wallclock = now;
  result.portions = portions;
  return result;
}

}  // namespace

RunResult simulate(const model::SystemConfig& cfg, const Schedule& schedule,
                   common::Rng& rng, const SimOptions& options) {
  SimWorkspace ws;
  return simulate_impl(cfg, schedule, rng, options, nullptr, ws);
}

RunResult simulate(const model::SystemConfig& cfg, const Schedule& schedule,
                   common::Rng& rng, const SimOptions& options,
                   SimWorkspace& ws) {
  return simulate_impl(cfg, schedule, rng, options, nullptr, ws);
}

const RunResult& simulate_into(const model::SystemConfig& cfg,
                               const Schedule& schedule, common::Rng& rng,
                               const SimOptions& options, SimWorkspace& ws) {
  return simulate_impl(cfg, schedule, rng, options, nullptr, ws);
}

const RunResult& simulate_mechanics_into(const model::SystemConfig& cfg,
                                         const Schedule& schedule,
                                         common::Rng& rng,
                                         const SimOptions& options,
                                         SimWorkspace& ws,
                                         CheckpointMechanics* mechanics) {
  return simulate_impl(cfg, schedule, rng, options, nullptr, ws, mechanics);
}

RunResult simulate_trace(const model::SystemConfig& cfg,
                         const Schedule& schedule, const FailureTrace& trace,
                         common::Rng& rng, const SimOptions& options) {
  SimWorkspace ws;
  return simulate_impl(cfg, schedule, rng, options, &trace, ws);
}

}  // namespace mlcr::sim
