// Event-driven simulator of a checkpointed parallel execution
// (paper Section IV-A: "exascale simulation ... driven by ticks").
//
// We simulate in continuous time (equivalent to a 1-second tick driver but
// O(#events) instead of O(#seconds)):
//   * the application must complete W = Te/g(N) seconds of parallel work;
//   * each enabled level i takes a checkpoint every tau_i seconds of
//     productive progress; when several levels trigger together the highest
//     level wins;
//   * per-level failures arrive as Poisson processes in *wall-clock* time
//     (rates lambda_i(N)); failures can strike during checkpoints and
//     recoveries, exactly as the paper's simulator allows;
//   * a level-j failure rolls execution back to the most recent checkpoint
//     of level >= j (position 0 — the initial state — always survives), and
//     charges the allocation period A plus the recovery overhead R_j;
//   * checkpoint/recovery overheads are jittered by a uniform error ratio
//     (paper: "random error ratio up to 30%").
//
// Time accounting matches the paper's four portions: first-pass execution is
// `productive`; re-executed work and re-taken checkpoints below the
// high-water mark are `rollback`; first-pass checkpoint writes are
// `checkpoint`; A + R per failure is `restart`.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "model/system.h"
#include "model/wallclock.h"

namespace mlcr::sim {

/// An executable checkpoint schedule derived from a planner's output.
struct Schedule {
  double scale = 0.0;  ///< N: number of processes/cores
  /// Checkpoint period per level in productive seconds; <= 0 disables the
  /// level (no checkpoints taken there).
  std::vector<double> period_seconds;

  /// Builds the schedule implied by a plan: tau_i = (Te/g(N)) / x_i for
  /// enabled levels (x_i > 1 after rounding; x_i == 1 means "no intermediate
  /// checkpoints" and disables the level).
  [[nodiscard]] static Schedule from_plan(const model::SystemConfig& cfg,
                                          const model::Plan& plan,
                                          const std::vector<bool>& enabled);
};

struct SimOptions {
  double jitter_ratio = 0.3;  ///< +-30% uniform jitter on C and R
  long max_events = 500'000'000;  ///< runaway guard
  /// Paper-faithful semantics (default): checkpoint writes always complete
  /// at full cost, and failures that arrive during the write are processed
  /// at write completion (they then recover from the just-written
  /// checkpoint).  The paper's analytic model never loses checkpoints to
  /// in-flight failures, and its finite SL(ori-scale) results at 1e6 cores
  /// — where the PFS write takes ~21,000 s against a ~2,000 s MTBF — are
  /// only reachable this way.  Set false for the realistic strict mode
  /// where a failure interrupts and discards the in-flight write; see the
  /// checkpoint-atomicity ablation bench for the consequences (livelock
  /// when C exceeds the MTBF).
  bool atomic_checkpoints = true;
  /// Paper-faithful semantics (default): every failure pays its own
  /// allocation + recovery serially (Formula (1) sums A + R_i over all
  /// failures), so failures arriving during a recovery queue behind it —
  /// this is what makes the paper's Table IV SL(ori-scale) rows explode to
  /// ~890 days when lambda (A + R) approaches 1.  Set false for the
  /// realistic collapse mode where a failure arriving mid-recovery aborts
  /// and subsumes it (correlated failures share one recovery).
  bool serial_recovery = true;
  /// Shape of the Weibull inter-arrival distribution; 1.0 (default) is the
  /// paper's exponential assumption.  < 1 models infant mortality, > 1
  /// wear-out.  The scale is set per level so the mean inter-arrival time
  /// stays 1/lambda_i(N) — a like-for-like sensitivity knob.
  double weibull_shape = 1.0;
};

/// Pre-drawn failure arrivals (absolute wall-clock seconds, per level).
/// Lets tests inject deterministic failures and benches replay recorded
/// system traces instead of sampling a renewal process.
struct FailureTrace {
  std::vector<std::vector<double>> arrivals_per_level;  ///< each ascending
};

/// Physical checkpoint/recovery mechanics plugged into the event loop.
///
/// The coarse kernel tracks one surviving checkpoint position per level in a
/// flat array; a high-fidelity backend (sim::DesBackend) replays the same
/// committed/failed call sequence through real fti::/cluster:: storage —
/// partner copies, Reed-Solomon rebuilds, PFS objects — and answers the
/// rollback question from what is actually recoverable.  The contract:
/// `committed(level, position)` records a durable checkpoint of `level`
/// taken at work position `position`; `failed(level)` applies the damage a
/// level-`level` failure does to the stored records and returns the work
/// position execution restarts from (0.0 — the initial state — when nothing
/// survives).  Implementations must be pure functions of the call sequence:
/// the replica driver relies on that for serial==parallel bit-identity.
class CheckpointMechanics {
 public:
  virtual ~CheckpointMechanics() = default;
  virtual void committed(std::size_t level, double position) = 0;
  [[nodiscard]] virtual double failed(std::size_t level) = 0;
};

struct RunResult {
  bool completed = false;
  double wallclock = 0.0;
  model::TimePortions portions;
  std::vector<long> failures_per_level;
  std::vector<long> checkpoints_per_level;  ///< includes re-taken ones
  long rolled_back_checkpoints = 0;         ///< re-taken during rollback
};

/// Reusable per-worker scratch for simulate(): every piece of per-level
/// mutable state lives in a flat array (SoA) owned here, so a Monte-Carlo
/// worker sweeping thousands of replicas pays the heap allocations once per
/// chunk span instead of ~6 times per replica.  A workspace is freely
/// reusable across replicas (simulate resets it) but must not be shared
/// between threads.  Contents are an implementation detail of simulate().
struct SimWorkspace {
  struct PendingFailure {
    double arrived_at = 0.0;
    std::size_t level = 0;
  };
  std::vector<double> next_arrival;    ///< per-level renewal clocks (absolute)
  std::vector<double> rate;            ///< per-level failure rates at N
  std::vector<double> weibull_scale;   ///< per-level Weibull scale at N
  std::vector<double> cp_position;     ///< most recent surviving checkpoint
  std::vector<double> ckpt_cost;       ///< C_i(N), hoisted once per replica
  std::vector<double> recovery_cost;   ///< R_i(N), hoisted once per replica
  std::vector<double> next_ckpt_mult;  ///< k_i: next trigger at k_i * tau_i
  std::vector<double> next_ckpt_at;    ///< cached k_i * tau_i (inf: disabled)
  std::vector<std::size_t> trace_index;
  std::vector<PendingFailure> pending;  ///< ascending by arrived_at
  std::vector<double> uniforms;         ///< batched rng draws
  std::size_t uniform_cursor = 0;
  RunResult result;  ///< simulate_into's reusable output slot
};

/// Simulates one execution of `cfg` under `schedule`, drawing failures and
/// jitter from `rng`.
[[nodiscard]] RunResult simulate(const model::SystemConfig& cfg,
                                 const Schedule& schedule, common::Rng& rng,
                                 const SimOptions& options = {});

/// Same, but with caller-owned scratch: pays no per-replica allocation for
/// the scratch arrays, only for the returned RunResult's vectors.
[[nodiscard]] RunResult simulate(const model::SystemConfig& cfg,
                                 const Schedule& schedule, common::Rng& rng,
                                 const SimOptions& options, SimWorkspace& ws);

/// The fully allocation-free hot form for replica sweeps: the result lands
/// in `ws.result` (reusing its vectors' capacity) and the reference stays
/// valid until the next simulate call on the same workspace.
const RunResult& simulate_into(const model::SystemConfig& cfg,
                               const Schedule& schedule, common::Rng& rng,
                               const SimOptions& options, SimWorkspace& ws);

/// The hot form with pluggable checkpoint mechanics: when `mechanics` is
/// non-null the per-level record array is replaced by the callbacks (see
/// CheckpointMechanics); a null `mechanics` behaves exactly like
/// simulate_into.  The rng draw sequence is identical either way, so a
/// mechanics backend consumes the same counter-based failure stream as the
/// coarse kernel.
const RunResult& simulate_mechanics_into(const model::SystemConfig& cfg,
                                         const Schedule& schedule,
                                         common::Rng& rng,
                                         const SimOptions& options,
                                         SimWorkspace& ws,
                                         CheckpointMechanics* mechanics);

/// Same execution but with failures replayed from `trace` instead of being
/// sampled (rng is still used for checkpoint/recovery jitter).
[[nodiscard]] RunResult simulate_trace(const model::SystemConfig& cfg,
                                       const Schedule& schedule,
                                       const FailureTrace& trace,
                                       common::Rng& rng,
                                       const SimOptions& options = {});

}  // namespace mlcr::sim
