#include "sim/des_backend.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "fti/fti.h"
#include "vmpi/engine.h"
#include "vmpi/task.h"

namespace mlcr::sim {

namespace {

/// Internal replay system: one RS group of 4 nodes x 2 ranks.  Four parity
/// shards (one per node) keep level 3 recoverable after the adjacent-pair
/// kill of a class-3 failure: the pair costs 2 data + 2 parity shards and
/// the surviving 4 of 8 suffice for the k=4 Reed-Solomon rebuild.
constexpr int kNodes = 4;
constexpr int kRanksPerNode = 2;
constexpr int kParityShards = 4;

cluster::ClusterConfig replay_cluster() {
  cluster::ClusterConfig config;
  config.nodes = kNodes;
  config.ranks_per_node = kRanksPerNode;
  config.rs_group_size = kNodes;
  return config;
}

fti::FtiConfig replay_fti() {
  fti::FtiConfig config;
  config.parity_shards = kParityShards;
  return config;
}

vmpi::RankTask checkpoint_task(fti::Fti& fti, int rank, int level,
                               cluster::Payload payload) {
  co_await fti.checkpoint(rank, level, std::move(payload));
}

vmpi::RankTask restore_task(fti::Fti& fti, int rank,
                            fti::CheckpointRecord record,
                            std::optional<cluster::Payload>* out) {
  *out = co_await fti.restore_record(rank, record);
}

/// One replica's physical checkpoint state, driven by the event loop
/// through the CheckpointMechanics callbacks.
class DesMechanics final : public CheckpointMechanics {
 public:
  DesMechanics(std::size_t levels, std::uint64_t seed, std::uint64_t run)
      : levels_(levels),
        seed_(seed),
        run_(run),
        cluster_(replay_cluster()),
        fti_(engine_, cluster_, replay_fti()) {}

  void committed(std::size_t level, double position) override {
    const int flevel = fti_level(level);
    const int version = next_version_++;
    const cluster::Payload payload =
        encode_replica_payload(seed_, run_, flevel, version);
    for (int rank = 0; rank < cluster_.rank_count(); ++rank) {
      engine_.spawn(checkpoint_task(fti_, rank, flevel, payload));
    }
    engine_.run();
    ledger_.push_back({fti_.records().back(), payload, position});
  }

  double failed(std::size_t level) override {
    damage(fti_level(level));
    // Coordinated restart: candidates in descending work-position order
    // (newest version first on ties), first record every rank restores
    // bit-exactly wins.  Position 0 — the initial state — always survives.
    std::vector<std::size_t> order(ledger_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       if (ledger_[a].position != ledger_[b].position) {
                         return ledger_[a].position > ledger_[b].position;
                       }
                       return ledger_[a].record.version >
                              ledger_[b].record.version;
                     });
    double restore = 0.0;
    std::vector<char> dead(ledger_.size(), 0);
    for (const std::size_t idx : order) {
      if (recoverable(ledger_[idx])) {
        restore = ledger_[idx].position;
        break;
      }
      dead[idx] = 1;
    }
    // Records proven unrecoverable stay so (their objects are wiped); drop
    // them so later failures don't re-try the restores.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < ledger_.size(); ++i) {
      if (dead[i] != 0) continue;
      if (kept != i) ledger_[kept] = std::move(ledger_[i]);
      ++kept;
    }
    ledger_.resize(kept);
    return restore;
  }

 private:
  struct Entry {
    fti::CheckpointRecord record;
    cluster::Payload payload;  ///< expected restore bytes (all ranks equal)
    double position = 0.0;
  };

  /// Config level -> FTI protection level: the top level writes to the PFS
  /// (4); the others map one-based and cap at the RS level (3).
  [[nodiscard]] int fti_level(std::size_t level) const noexcept {
    if (level + 1 == levels_) return 4;
    return std::min(static_cast<int>(level) + 1, 3);
  }

  /// Applies the physical damage of a failure class: the nodes it kills
  /// lose their local stores (level-by-level survivability then falls out
  /// of what fti:: can actually rebuild).  Victims rotate deterministically
  /// — no rng draws, so the replica's failure stream stays untouched.
  void damage(int flevel) {
    const int nodes = cluster_.node_count();
    switch (flevel) {
      case 1:
        return;  // software fault: storage intact
      case 2: {
        const int victim = next_kill_++ % nodes;
        cluster_.kill_node(victim);
        cluster_.revive_node(victim);
        return;
      }
      case 3: {
        const int victim = next_kill_++ % nodes;
        const int partner = cluster_.partner_of(victim);
        cluster_.kill_node(victim);
        if (partner != victim) cluster_.kill_node(partner);
        cluster_.revive_node(victim);
        if (partner != victim) cluster_.revive_node(partner);
        return;
      }
      default: {
        for (int id = 0; id < nodes; ++id) cluster_.kill_node(id);
        for (int id = 0; id < nodes; ++id) cluster_.revive_node(id);
        return;
      }
    }
  }

  [[nodiscard]] bool recoverable(const Entry& entry) {
    const int ranks = cluster_.rank_count();
    std::vector<std::optional<cluster::Payload>> got(
        static_cast<std::size_t>(ranks));
    for (int rank = 0; rank < ranks; ++rank) {
      engine_.spawn(restore_task(fti_, rank, entry.record,
                                 &got[static_cast<std::size_t>(rank)]));
    }
    engine_.run();
    for (const auto& payload : got) {
      if (!payload.has_value() || payload->bytes != entry.payload.bytes) {
        return false;
      }
    }
    return true;
  }

  std::size_t levels_;
  std::uint64_t seed_;
  std::uint64_t run_;
  vmpi::Engine engine_;
  cluster::Cluster cluster_;
  fti::Fti fti_;
  std::vector<Entry> ledger_;
  int next_kill_ = 0;
  int next_version_ = 1;
};

}  // namespace

cluster::Payload encode_replica_payload(std::uint64_t seed, std::uint64_t run,
                                        int level, int version) {
  cluster::Payload payload;
  payload.bytes.resize(64);
  // splitmix64-style mix of the identifying tuple: distinct content per
  // (replica, checkpoint), reproducible forever — these bytes are compared
  // on every restore.
  std::uint64_t x = seed ^ (run * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(level) << 56) ^
                    (static_cast<std::uint64_t>(version) * 0xbf58476d1ce4e5b9ULL);
  for (std::size_t i = 0; i < payload.bytes.size(); ++i) {
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    payload.bytes[i] = static_cast<std::uint8_t>(x);
  }
  payload.logical_size = payload.bytes.size();
  return payload;
}

MonteCarloResult DesBackend::run(const model::SystemConfig& cfg,
                                 const Schedule& schedule,
                                 const MonteCarloOptions& options,
                                 common::ThreadPool* pool) const {
  const std::uint64_t seed = options.seed;
  const std::size_t levels = cfg.levels();
  const SimOptions& sim = options.sim;
  const ReplicaKernel kernel =
      [&cfg, &schedule, &sim, seed, levels](
          std::uint64_t run, common::Rng& rng,
          SimWorkspace& ws) -> const RunResult& {
    DesMechanics mechanics(levels, seed, run);
    return simulate_mechanics_into(cfg, schedule, rng, sim, ws, &mechanics);
  };
  return monte_carlo_kernel(cfg, schedule, options, kernel, pool);
}

}  // namespace mlcr::sim
