// Failure-trace utilities: generate synthetic Poisson traces, and persist
// traces in a simple text format so recorded system logs (one event per
// line: "<seconds> <level>") can drive the simulator deterministically.
#pragma once

#include <iosfwd>
#include <string>

#include "common/rng.h"
#include "model/failure.h"
#include "sim/event_sim.h"

namespace mlcr::sim {

/// Draws Poisson arrivals for every level over [0, horizon) at scale N.
[[nodiscard]] FailureTrace draw_poisson_trace(const model::FailureRates& rates,
                                              double n, double horizon,
                                              common::Rng& rng);

/// Serializes as text: header line, then "<seconds> <level>" per event in
/// time order (level is 1-based in the file).
void write_trace(std::ostream& out, const FailureTrace& trace);
[[nodiscard]] std::string trace_to_string(const FailureTrace& trace);

/// Parses the text format; throws common::Error (naming the line) on
/// malformed input: unparseable fields, trailing garbage tokens after the
/// two fields, non-finite or negative times, non-integer level tokens,
/// levels outside [1, levels], or non-ascending times within a level.
[[nodiscard]] FailureTrace read_trace(std::istream& in, std::size_t levels);
[[nodiscard]] FailureTrace trace_from_string(const std::string& text,
                                             std::size_t levels);

/// Total number of events in the trace.
[[nodiscard]] std::size_t trace_event_count(const FailureTrace& trace);

}  // namespace mlcr::sim
