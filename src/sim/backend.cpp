#include "sim/backend.h"

#include "sim/des_backend.h"

namespace mlcr::sim {

namespace {

class CoarseBackend final : public Backend {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "coarse"; }
  [[nodiscard]] MonteCarloResult run(const model::SystemConfig& cfg,
                                     const Schedule& schedule,
                                     const MonteCarloOptions& options,
                                     common::ThreadPool* pool) const override {
    if (pool != nullptr) return monte_carlo(cfg, schedule, options, *pool);
    MonteCarloOptions serial = options;
    serial.threads = 1;
    return monte_carlo(cfg, schedule, serial);
  }
};

}  // namespace

const Backend& coarse_backend() noexcept {
  static const CoarseBackend backend;
  return backend;
}

const Backend& des_backend() noexcept {
  static const DesBackend backend;
  return backend;
}

}  // namespace mlcr::sim
