// The DES validation backend: replays the coarse event loop's checkpoint
// commit / failure rollback sequence through the rank-level stack — a
// vmpi::Engine-driven cluster::Cluster with an fti::Fti library doing real
// partner copies and GF(2^8) Reed-Solomon group encodings — instead of the
// closed per-level position array (DESIGN.md §14).
//
// Per replica, a fresh internal system (4 nodes x 2 ranks, one RS group,
// parity_shards = 4 so an adjacent-pair node loss stays L3-recoverable) is
// built, and:
//
//   * each committed checkpoint runs a collective fti::checkpoint of every
//     rank at the mapped FTI level (config level i -> i+1, capped at 3,
//     with the top config level -> 4/PFS), carrying a payload that encodes
//     (seed, run, level, version) so restores are verified bit-exactly;
//   * each level-j failure deterministically kills the nodes that failure
//     class physically costs (1: none; 2: one node; 3: an adjacent partner
//     pair; top: every node), then performs a coordinated restart: the
//     stored records are tried in descending work-position order and the
//     first one that EVERY rank restores bit-exactly wins.  Records proven
//     unrecoverable are dropped.
//
// Wall-clock cost stays with the analytic cost model exactly as in the
// coarse kernel (the engine's virtual time only orders the storage
// mechanics), and the replica consumes the identical counter-based rng
// stream — so serial==parallel bit-identity holds and coarse-vs-des
// differences isolate genuine mechanics divergence, not noise.
#pragma once

#include <cstdint>

#include "cluster/storage.h"
#include "sim/backend.h"

namespace mlcr::sim {

class DesBackend final : public Backend {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "des"; }
  [[nodiscard]] MonteCarloResult run(const model::SystemConfig& cfg,
                                     const Schedule& schedule,
                                     const MonteCarloOptions& options,
                                     common::ThreadPool* pool) const override;
};

/// Deterministic checkpoint payload for replica `run` of stream `seed`:
/// 64 bytes mixed from (seed, run, level, version), identical for every
/// rank of the collective.  Bit-stable by construction — the restore path
/// compares restored bytes against a recomputation, so any lossy storage
/// round-trip (or a restore answering with the wrong record) is caught.
[[nodiscard]] cluster::Payload encode_replica_payload(std::uint64_t seed,
                                                      std::uint64_t run,
                                                      int level, int version);

}  // namespace mlcr::sim
