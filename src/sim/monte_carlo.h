// Monte-Carlo driver: repeats the event simulation with independent random
// streams and aggregates the paper's reported metrics (mean wall-clock, the
// four time portions, efficiency).  The paper reports means of 100 runs.
//
// Determinism contract (the validation pipeline depends on it, see
// DESIGN.md §11): replica `run` always draws from the counter-based stream
// common::Rng(seed, run), and replicas are aggregated in fixed chunks of
// kMinChunk merged in ascending chunk order — a pure function of
// (runs, kMinChunk), never of the thread count.  Parallelism only decides
// which worker *executes* a chunk: workers claim contiguous chunk spans
// (~2-4 spans per worker so the submit/future round-trip is amortized over
// at least kMinChunk replicas) and write each chunk's accumulator into its
// fixed slot; the caller then merges slots in ascending chunk order.  A run
// fanned across a thread pool is therefore bit-identical to a serial one,
// and `threads` is never part of any cache key.
#pragma once

#include <cstdint>
#include <functional>

#include "common/thread_pool.h"
#include "model/wallclock.h"
#include "sim/event_sim.h"
#include "stat/summary.h"

namespace mlcr::sim {

struct MonteCarloResult {
  stat::Summary wallclock;
  stat::Summary productive;
  stat::Summary checkpoint;
  stat::Summary restart;
  stat::Summary rollback;
  stat::Summary efficiency;
  stat::Summary failures;  ///< total failures per run
  long incomplete_runs = 0;

  /// Mean portions, convenient for table printing.
  [[nodiscard]] model::TimePortions mean_portions() const;
};

/// Reserved seed marking "unset" in serialized requests; validate() rejects
/// it so a forgotten field can never silently alias a real stream.
inline constexpr std::uint64_t kSeedSentinel = 0xffffffffffffffffULL;

/// Replicas per aggregation chunk.  Fixed (never derived from the thread
/// count) so the merge tree — and therefore every aggregated double — is
/// identical for any parallel degree.  Also the pool-bypass threshold: a
/// request of at most one chunk runs inline, and a worker task always
/// covers at least one full chunk.
inline constexpr int kMinChunk = 4;

/// Number of aggregation chunks for `runs` replicas: the partition is
/// ceil(runs / kMinChunk) contiguous chunks of kMinChunk (short tail chunk
/// last).  Pure in (runs, kMinChunk) — tests pin that no thread count can
/// perturb it.
[[nodiscard]] constexpr int chunk_count(int runs) noexcept {
  return runs <= 0 ? 0 : (runs + kMinChunk - 1) / kMinChunk;
}

struct MonteCarloOptions {
  int runs = 100;  ///< paper: "mean values based on 100 runs"
  std::uint64_t seed = 0x5eed;
  /// Worker threads for the replica fan-out; 0 = hardware concurrency
  /// (matching svc::SweepEngineOptions::threads), 1 = run inline.  Ignored
  /// by the overload taking an external pool.  Never affects the result.
  std::size_t threads = 1;
  SimOptions sim;
};

/// Validates `options` in the SystemConfigBuilder style: throws a
/// field-naming common::Error on runs <= 0, the reserved seed sentinel, or
/// non-finite / out-of-range sim horizons (jitter_ratio, max_events,
/// weibull_shape).  Service layers map the throw to Status::kInvalidConfig.
void validate(const MonteCarloOptions& options);

/// Runs `options.runs` replicas (validating first), fanning chunk spans
/// across `options.threads` workers.  Bit-identical for every thread count.
/// Single-thread or single-chunk requests never touch a pool.
[[nodiscard]] MonteCarloResult monte_carlo(
    const model::SystemConfig& cfg, const Schedule& schedule,
    const MonteCarloOptions& options = {});

/// Same, but on an existing pool (options.threads is ignored).  Requests of
/// at most kMinChunk runs — and any call on a 1-worker pool — bypass the
/// pool entirely and run inline, so small served validate requests never
/// pay the submit/future round-trip.  Callers must not invoke this from
/// inside one of `pool`'s own workers: the caller blocks on chunk futures,
/// and a blocked worker could deadlock the pool.
[[nodiscard]] MonteCarloResult monte_carlo(const model::SystemConfig& cfg,
                                           const Schedule& schedule,
                                           const MonteCarloOptions& options,
                                           common::ThreadPool& pool);

/// Per-replica simulation kernel for the generic driver below.  Called once
/// per replica with the shared generator already reseeded to the
/// counter-based stream (seed, run) and a worker-local workspace; returns
/// the replica's result (typically ws.result).  A kernel must be a pure
/// function of (run, stream) and safe to invoke concurrently from several
/// workers — the chunk/span/merge driver then extends the serial==parallel
/// bit-identity contract to any backend, not just the coarse one.
using ReplicaKernel = std::function<const RunResult&(
    std::uint64_t run, common::Rng& rng, SimWorkspace& ws)>;

/// Backend-agnostic replica driver: identical validation, chunk partition,
/// span claiming and ascending-order merge tree as monte_carlo, with the
/// per-replica simulation supplied by `kernel`.  A null `pool` — or a
/// 1-worker pool, or a request of at most kMinChunk runs — runs inline.
[[nodiscard]] MonteCarloResult monte_carlo_kernel(
    const model::SystemConfig& cfg, const Schedule& schedule,
    const MonteCarloOptions& options, const ReplicaKernel& kernel,
    common::ThreadPool* pool = nullptr);

}  // namespace mlcr::sim
