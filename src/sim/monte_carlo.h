// Monte-Carlo driver: repeats the event simulation with independent random
// streams and aggregates the paper's reported metrics (mean wall-clock, the
// four time portions, efficiency).  The paper reports means of 100 runs.
#pragma once

#include <cstdint>

#include "model/wallclock.h"
#include "sim/event_sim.h"
#include "stat/summary.h"

namespace mlcr::sim {

struct MonteCarloResult {
  stat::Summary wallclock;
  stat::Summary productive;
  stat::Summary checkpoint;
  stat::Summary restart;
  stat::Summary rollback;
  stat::Summary efficiency;
  stat::Summary failures;  ///< total failures per run
  long incomplete_runs = 0;

  /// Mean portions, convenient for table printing.
  [[nodiscard]] model::TimePortions mean_portions() const;
};

struct MonteCarloOptions {
  int runs = 100;  ///< paper: "mean values based on 100 runs"
  std::uint64_t seed = 0x5eed;
  SimOptions sim;
};

[[nodiscard]] MonteCarloResult monte_carlo(
    const model::SystemConfig& cfg, const Schedule& schedule,
    const MonteCarloOptions& options = {});

}  // namespace mlcr::sim
