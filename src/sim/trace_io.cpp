#include "sim/trace_io.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/error.h"

namespace mlcr::sim {

namespace {
constexpr const char* kHeader = "# mlcr failure trace v1";
}

FailureTrace draw_poisson_trace(const model::FailureRates& rates, double n,
                                double horizon, common::Rng& rng) {
  MLCR_EXPECT(horizon > 0.0, "draw_poisson_trace: horizon must be positive");
  FailureTrace trace;
  trace.arrivals_per_level.resize(rates.levels());
  for (std::size_t level = 0; level < rates.levels(); ++level) {
    const double rate = rates.rate_per_second(level, n);
    if (rate <= 0.0) continue;
    double t = rng.exponential(rate);
    while (t < horizon) {
      trace.arrivals_per_level[level].push_back(t);
      t += rng.exponential(rate);
    }
  }
  return trace;
}

void write_trace(std::ostream& out, const FailureTrace& trace) {
  out << kHeader << '\n';
  // Merge levels in time order for human-readable output.
  std::vector<std::pair<double, std::size_t>> events;
  for (std::size_t level = 0; level < trace.arrivals_per_level.size();
       ++level) {
    for (double t : trace.arrivals_per_level[level]) {
      events.emplace_back(t, level + 1);
    }
  }
  std::sort(events.begin(), events.end());
  for (const auto& [t, level] : events) {
    out << t << ' ' << level << '\n';
  }
}

std::string trace_to_string(const FailureTrace& trace) {
  std::ostringstream out;
  out.precision(17);
  write_trace(out, trace);
  return out.str();
}

FailureTrace read_trace(std::istream& in, std::size_t levels) {
  MLCR_EXPECT(levels >= 1, "read_trace: need at least one level");
  FailureTrace trace;
  trace.arrivals_per_level.resize(levels);
  std::string line;
  bool saw_header = false;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      saw_header = saw_header || line == kHeader;
      continue;
    }
    std::istringstream fields(line);
    double at = 0.0;
    std::string level_token;
    if (!(fields >> at >> level_token)) {
      common::fail("read_trace: malformed line " +
                   std::to_string(line_number) + ": '" + line + "'");
    }
    if (!std::isfinite(at)) {
      common::fail("read_trace: non-finite time on line " +
                   std::to_string(line_number));
    }
    // The level must be a bare decimal integer: "2.5" or "2x" silently
    // truncating to 2 would misfile events, so reject anything strtol does
    // not consume whole.
    char* level_end = nullptr;
    const long level = std::strtol(level_token.c_str(), &level_end, 10);
    if (level_end == level_token.c_str() || *level_end != '\0') {
      common::fail("read_trace: malformed level '" + level_token +
                   "' on line " + std::to_string(line_number) +
                   " (expected a bare integer)");
    }
    std::string garbage;
    if (fields >> garbage) {
      common::fail("read_trace: trailing garbage '" + garbage +
                   "' on line " + std::to_string(line_number));
    }
    if (level < 1 || static_cast<std::size_t>(level) > levels) {
      common::fail("read_trace: level out of range on line " +
                   std::to_string(line_number));
    }
    if (at < 0.0) {
      common::fail("read_trace: negative time on line " +
                   std::to_string(line_number));
    }
    auto& arrivals =
        trace.arrivals_per_level[static_cast<std::size_t>(level - 1)];
    if (!arrivals.empty() && at < arrivals.back()) {
      common::fail("read_trace: times not ascending for level " +
                   std::to_string(level));
    }
    arrivals.push_back(at);
  }
  return trace;
}

FailureTrace trace_from_string(const std::string& text, std::size_t levels) {
  std::istringstream in(text);
  return read_trace(in, levels);
}

std::size_t trace_event_count(const FailureTrace& trace) {
  std::size_t count = 0;
  for (const auto& arrivals : trace.arrivals_per_level) {
    count += arrivals.size();
  }
  return count;
}

}  // namespace mlcr::sim
