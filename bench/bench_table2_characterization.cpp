// Table II: characterization of the four FTI checkpoint levels on the
// (virtual) Fusion cluster, 128-1024 ranks, followed by the least-squares
// fit of Formula (19) that the rest of the paper consumes:
//   paper fit: eps = (0.866, 2.586, 3.886, 5.5), alpha = (0, 0, 0, 0.0212).
#include "bench_util.h"

#include "num/least_squares.h"

int main() {
  using namespace mlcr;
  bench::print_header("Table II — FTI checkpoint cost characterization");

  const int scales[] = {128, 256, 384, 512, 1024};
  common::Table table({"scale", "L1 ours", "L1 paper", "L2 ours", "L2 paper",
                       "L3 ours", "L3 paper", "L4 ours", "L4 paper"});
  std::vector<double> level_cost[4];
  std::vector<double> ranks_h;
  const auto& paper = exp::table2_data();

  for (std::size_t i = 0; i < std::size(scales); ++i) {
    const int ranks = scales[i];
    const auto costs = exp::measure_fti_costs(ranks);
    ranks_h.push_back(ranks);
    std::vector<std::string> row{common::strf("%d", ranks)};
    for (int level = 0; level < 4; ++level) {
      level_cost[level].push_back(costs[static_cast<std::size_t>(level)]);
      row.push_back(
          common::strf("%.2f", costs[static_cast<std::size_t>(level)]));
      row.push_back(common::strf("%.2f", paper[i].cost[level]));
    }
    table.add_row(std::move(row));
  }
  table.print();

  bench::print_header("Table II — Formula (19) least-squares fits");
  const auto reference = exp::fti_coefficients();
  const std::vector<double> zero_h(ranks_h.size(), 0.0);
  for (int level = 0; level < 4; ++level) {
    const bool scale_dependent = level == 3;  // only the PFS level grows
    const auto fit = num::fit_affine_in(scale_dependent ? ranks_h : zero_h,
                                        level_cost[level]);
    if (!fit.ok) {
      std::printf("  level %d: fit failed\n", level + 1);
      continue;
    }
    bench::print_comparison(
        common::strf("level %d eps (s)", level + 1),
        reference.eps[level], fit.coefficients[0]);
    if (scale_dependent) {
      bench::print_comparison("level 4 alpha (s/rank)",
                              reference.alpha[level], fit.coefficients[1]);
    }
  }
  return 0;
}
