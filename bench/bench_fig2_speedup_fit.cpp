// Figure 2: speedup measurement and quadratic fitting.
//  (a) Heat Distribution: speedup grows and flattens up to 1,024 ranks; a
//      quadratic through the origin (Formula (12)) fits the curve and
//      yields the kappa / N_sym parameters the optimizer consumes.
//  (b) eddy_uv-style kernel: speedup peaks and then declines; the fit is
//      made on the initial increasing range only, as the paper prescribes.
#include "bench_util.h"

#include "apps/eddy.h"
#include "apps/heat.h"
#include "model/speedup.h"
#include "num/least_squares.h"

namespace {

using namespace mlcr;

void fit_and_print(const std::string& label,
                   const std::vector<double>& scales,
                   const std::vector<double>& speedups) {
  const auto fit = num::fit_quadratic_through_origin(scales, speedups);
  if (!fit.ok || fit.coefficients[1] >= 0.0) {
    std::printf("  %s: quadratic fit not concave — fit on a shorter range\n",
                label.c_str());
    return;
  }
  const auto curve = model::QuadraticSpeedup::from_coefficients(
      fit.coefficients[0], fit.coefficients[1]);
  std::printf(
      "  %s fit: kappa = %.3f, N_sym = %s, R^2 = %.4f (paper heat fit: "
      "kappa ~ 0.46)\n",
      label.c_str(), curve.kappa(),
      common::format_count(curve.n_symmetry()).c_str(), fit.r_squared);
}

}  // namespace

int main() {
  using namespace mlcr;
  bench::print_header("Figure 2(a) — Heat Distribution speedups (measured)");

  apps::HeatConfig heat;
  heat.rows = 1026;
  heat.cols = 1024;
  heat.iterations = 10;
  heat.network.latency = 4.5e-6;
  const double single = apps::heat_single_core_time(heat);

  common::Table table_a({"ranks", "speedup", "efficiency"});
  std::vector<double> scales_a, speedups_a;
  for (int ranks : {32, 64, 128, 160, 256, 384, 512, 768, 1024}) {
    const auto result = apps::run_heat(heat, ranks);
    const double speedup = single / result.wallclock;
    scales_a.push_back(ranks);
    speedups_a.push_back(speedup);
    table_a.add_row({common::strf("%d", ranks), common::strf("%.1f", speedup),
                     common::strf("%.2f", speedup / ranks)});
  }
  table_a.print();
  fit_and_print("heat", scales_a, speedups_a);
  std::printf("  paper anchor: speedup 77 at 160 cores (our value: %.1f)\n",
              speedups_a[3]);

  bench::print_header(
      "Figure 2(b) — eddy_uv-style kernel (peak-then-decline)");
  apps::EddyConfig eddy;
  eddy.network.latency = 5e-5;
  eddy.network.bandwidth = 1e9;
  const double eddy_single = apps::eddy_single_core_time(eddy);

  common::Table table_b({"ranks", "speedup"});
  std::vector<double> scales_b, speedups_b;
  double peak = 0.0;
  int peak_ranks = 0;
  for (int ranks : {2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256}) {
    const auto result = apps::run_eddy(eddy, ranks);
    const double speedup = eddy_single / result.wallclock;
    table_b.add_row(
        {common::strf("%d", ranks), common::strf("%.1f", speedup)});
    if (speedup > peak) {
      peak = speedup;
      peak_ranks = ranks;
    }
    scales_b.push_back(ranks);
    speedups_b.push_back(speedup);
  }
  table_b.print();
  std::printf("  peak speedup %.1f at %d ranks (paper: decline after ~100)\n",
              peak, peak_ranks);

  // Fit on the increasing range only, through the peak — the paper's rule:
  // "we need to focus only on the initial scale range through the point
  // with the maximum original speedup".
  std::vector<double> rising_scales, rising_speedups;
  for (std::size_t i = 0; i < scales_b.size(); ++i) {
    if (scales_b[i] <= peak_ranks) {
      rising_scales.push_back(scales_b[i]);
      rising_speedups.push_back(speedups_b[i]);
    }
  }
  fit_and_print("eddy (rising range)", rising_scales, rising_speedups);
  return 0;
}
