// Figure 3: numerical confirmation of the single-level optimum with
// uncertain scale (Section III-C.2).
//
// Paper reference values (Te = 4000 core-days, kappa = 0.46, N_star = 1e5,
// b = 0.005):
//   constant cost C = R = 5 s          -> x* = 797,  N* = 81,746
//   linear cost  C = R = 5 + 0.005 N   -> x* = 140,  N* = 20,215
// The bench regenerates both optima, prints the E(Tw) landscape the figure
// plots (wall-clock vs N at the optimal x, and vs x at the optimal N), and
// cross-checks the optimum against Young-at-fixed-scale baselines.
#include "bench_util.h"

#include "model/wallclock.h"
#include "opt/single_level.h"

namespace {

using namespace mlcr;

void run_case(bool linear_cost, double paper_x, double paper_n) {
  const auto cfg = exp::make_fig3_system(linear_cost);
  const auto mu = exp::fig3_mu();
  const auto s = opt::solve_single_level(cfg, mu);

  bench::print_header(std::string("Figure 3 — single-level optimum, ") +
                      (linear_cost ? "linear cost C=R=5+0.005N"
                                   : "constant cost C=R=5s"));
  std::printf("  converged=%d iterations=%d\n", s.converged ? 1 : 0,
              s.iterations);
  bench::print_comparison("optimal interval count x*", paper_x, s.x);
  bench::print_comparison("optimal scale N*", paper_n, s.n);
  std::printf("  E(Tw) at optimum: %s\n",
              common::format_duration(s.wallclock).c_str());

  // The landscape the figure plots: wall-clock vs N at x*.
  common::Table by_n({"N", "E(Tw) days", "vs optimum"});
  for (double f : {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0}) {
    const double n = s.n * f;
    if (n <= 0.0 || n > cfg.scale_upper_bound()) continue;
    const double w = model::expected_wallclock_single(cfg, mu, s.x, n);
    by_n.add_row({common::format_count(n),
                  common::strf("%.3f", common::seconds_to_days(w)),
                  common::strf("%+.2f%%", 100.0 * (w / s.wallclock - 1.0))});
  }
  by_n.print();

  common::Table by_x({"x", "E(Tw) days", "vs optimum"});
  for (double f : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0}) {
    const double x = std::max(1.0, s.x * f);
    const double w = model::expected_wallclock_single(cfg, mu, x, s.n);
    by_x.add_row({common::strf("%.0f", x),
                  common::strf("%.3f", common::seconds_to_days(w)),
                  common::strf("%+.2f%%", 100.0 * (w / s.wallclock - 1.0))});
  }
  by_x.print();

  // Comparison curves in the figure: Young at the original scale N_star.
  const auto young =
      opt::solve_single_level_fixed_scale(cfg, mu, cfg.scale_upper_bound());
  std::printf("  Young@N_star: x=%.0f E(Tw)=%s (+%.1f%% vs optimum)\n",
              young.x, common::format_duration(young.wallclock).c_str(),
              100.0 * (young.wallclock / s.wallclock - 1.0));
}

}  // namespace

int main() {
  run_case(/*linear_cost=*/false, 797.0, 81746.0);
  run_case(/*linear_cost=*/true, 140.0, 20215.0);
  return 0;
}
