// Figure 5: time analysis at Te = 3m core-days, N_star = 1m cores.
//
// For each of the six failure cases and each of the four solutions, runs the
// planner and 100 Monte-Carlo simulations, and prints the four wall-clock
// portions (productive / checkpoint / restart / rollback) plus the total.
// Paper headline: ML(opt-scale) shortens wall-clock by 58-84% vs
// SL(opt-scale), 7-26% vs ML(ori-scale), 79-88% vs SL(ori-scale).
#include "bench_util.h"

namespace {

using namespace mlcr;

void run(double te_core_days) {
  svc::SweepEngine engine;
  bench::print_header(common::strf(
      "Figure %s — time analysis (Te=%.0fm core-days, N_star=1m cores)",
      te_core_days == 3e6 ? "5" : "6", te_core_days / 1e6));

  common::Table table({"case", "solution", "N used", "productive(d)",
                       "checkpoint(d)", "restart(d)", "rollback(d)",
                       "wall-clock(d)"});
  // Improvement of ML(opt-scale) over the other three, aggregated per case.
  std::vector<double> improvement_sl_opt, improvement_ml_ori,
      improvement_sl_ori;

  for (const auto& failure_case : exp::paper_failure_cases()) {
    const auto cfg = exp::make_fti_system(te_core_days, failure_case);
    double ml_opt_wct = 0.0;
    for (const auto solution : opt::all_solutions()) {
      const auto eval = bench::evaluate(engine, cfg, solution);
      const auto portions = eval.simulated.mean_portions();
      const double wct = eval.simulated.wallclock.mean();
      table.add_row(
          {failure_case.name, opt::to_string(solution),
           common::format_count(eval.report.plan().scale),
           common::strf("%.2f", common::seconds_to_days(portions.productive)),
           common::strf("%.2f", common::seconds_to_days(portions.checkpoint)),
           common::strf("%.2f", common::seconds_to_days(portions.restart)),
           common::strf("%.2f", common::seconds_to_days(portions.rollback)),
           common::strf("%.2f", common::seconds_to_days(wct))});
      switch (solution) {
        case opt::Solution::kMultilevelOptScale: ml_opt_wct = wct; break;
        case opt::Solution::kSingleLevelOptScale:
          improvement_sl_opt.push_back(100.0 * (1.0 - ml_opt_wct / wct));
          break;
        case opt::Solution::kMultilevelOriScale:
          improvement_ml_ori.push_back(100.0 * (1.0 - ml_opt_wct / wct));
          break;
        case opt::Solution::kSingleLevelOriScale:
          improvement_sl_ori.push_back(100.0 * (1.0 - ml_opt_wct / wct));
          break;
      }
    }
  }
  table.print();

  auto band = [](const std::vector<double>& v) {
    double lo = v.front(), hi = v.front();
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return common::strf("%.1f-%.1f%%", lo, hi);
  };
  std::printf("\n  ML(opt-scale) wall-clock reduction vs SL(opt-scale): %s"
              " (paper: 58-84%% at Te=3m)\n",
              band(improvement_sl_opt).c_str());
  std::printf("  ML(opt-scale) wall-clock reduction vs ML(ori-scale): %s"
              " (paper: 7-26%% at Te=3m)\n",
              band(improvement_ml_ori).c_str());
  std::printf("  ML(opt-scale) wall-clock reduction vs SL(ori-scale): %s"
              " (paper: 79-88%% at Te=3m)\n",
              band(improvement_sl_ori).c_str());
}

}  // namespace

int main() {
  run(3e6);
  return 0;
}
