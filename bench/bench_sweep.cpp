// Sweep-engine throughput: serial vs. parallel vs. cached batch planning.
//
// Builds a 120-request what-if grid (5 workloads x 6 failure cases x 4
// solution families — the shape of grid a capacity-planning service sweeps
// whenever the failure environment changes) and measures requests/second
// under three engines:
//   serial    1 thread, cache disabled — the old loop-over-opt::plan shape
//   parallel  hardware threads, cache disabled
//   cached    hardware threads, warm cache (re-sweep of the same grid)
//
// Acceptance targets (ISSUE 1): on a multi-core host the parallel sweep is
// >= 3x serial, and the fully-cached re-sweep is >= 10x the cold sweep.
#include <chrono>

#include "bench_util.h"

namespace {

using namespace mlcr;

std::vector<svc::PlanRequest> make_grid() {
  std::vector<svc::PlanRequest> requests;
  for (const double te_core_days : {1e6, 2e6, 3e6, 5e6, 1e7}) {
    for (const auto& failure_case : exp::paper_failure_cases()) {
      const auto cfg = exp::make_fti_system(te_core_days, failure_case);
      for (const auto solution : opt::all_solutions()) {
        requests.push_back(
            {cfg, solution, {},
             common::strf("te=%.0fm|%s|%s", te_core_days / 1e6,
                          failure_case.name.c_str(),
                          opt::to_string(solution).c_str())});
      }
    }
  }
  return requests;
}

double time_sweep(svc::SweepEngine& engine,
                  const std::vector<svc::PlanRequest>& requests,
                  std::vector<svc::PlanReport>* reports) {
  const auto start = std::chrono::steady_clock::now();
  *reports = engine.plan_sweep(requests);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace mlcr;
  const auto requests = make_grid();
  bench::print_header(common::strf(
      "Sweep engine throughput — %zu-request what-if grid", requests.size()));

  std::vector<svc::PlanReport> serial_reports, parallel_reports,
      cold_reports, warm_reports;

  svc::SweepEngine serial({/*threads=*/1, /*cache_capacity=*/0});
  const double serial_s = time_sweep(serial, requests, &serial_reports);

  svc::SweepEngine parallel({/*threads=*/0, /*cache_capacity=*/0});
  const double parallel_s = time_sweep(parallel, requests, &parallel_reports);

  svc::SweepEngine cached({/*threads=*/0, /*cache_capacity=*/65536});
  const double cold_s = time_sweep(cached, requests, &cold_reports);
  const double warm_s = time_sweep(cached, requests, &warm_reports);

  // Determinism spot check: parallel values must equal the serial baseline.
  std::size_t mismatches = 0, warm_hits = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (serial_reports[i].plan().scale != parallel_reports[i].plan().scale ||
        serial_reports[i].wallclock() != parallel_reports[i].wallclock()) {
      ++mismatches;
    }
    if (warm_reports[i].cache_hit) ++warm_hits;
  }

  common::Table table({"engine", "threads", "time (s)", "requests/s",
                       "speedup vs serial"});
  auto row = [&](const char* name, std::size_t threads, double seconds) {
    table.add_row({name, common::strf("%zu", threads),
                   common::strf("%.3f", seconds),
                   common::strf("%.1f", requests.size() / seconds),
                   common::strf("%.2fx", serial_s / seconds)});
  };
  row("serial (no cache)", 1, serial_s);
  row("parallel (no cache)", parallel.threads(), parallel_s);
  row("parallel cold (cache)", cached.threads(), cold_s);
  row("parallel warm (cache)", cached.threads(), warm_s);
  table.print();

  std::printf(
      "\n  parallel vs serial: %.2fx (target >= 3x on a multi-core host)\n"
      "  warm vs cold sweep: %.2fx (target >= 10x)\n"
      "  parallel/serial mismatches: %zu (must be 0)\n"
      "  warm-sweep cache hits: %zu / %zu\n",
      serial_s / parallel_s, cold_s / warm_s, mismatches, warm_hits,
      requests.size());
  return mismatches == 0 ? 0 : 1;
}
