// Sweep-engine throughput: serial vs. parallel vs. cached batch planning.
//
// Builds a 120-request what-if grid (5 workloads x 6 failure cases x 4
// solution families — the shape of grid a capacity-planning service sweeps
// whenever the failure environment changes) and measures requests/second
// under three engines:
//   serial    1 thread, cache disabled — the old loop-over-opt::plan shape
//   parallel  hardware threads, cache disabled
//   cached    hardware threads, warm cache (re-sweep of the same grid)
// plus a small-cache engine (capacity < grid size) that demonstrates LRU
// eviction: the warm re-sweep must report > 0 evictions, proving entries
// keep flowing through the cache instead of the old drop-on-full behavior.
//
// Each sweep also prints its SweepStats aggregates (cache hits / misses /
// evictions, solve-time percentiles, queue wait) from the engine's metrics
// layer.
//
// Acceptance targets (ISSUE 1): on a multi-core host the parallel sweep is
// >= 3x serial, and the fully-cached re-sweep is >= 10x the cold sweep.
#include <chrono>

#include "bench_util.h"

namespace {

using namespace mlcr;

std::vector<svc::PlanRequest> make_grid() {
  std::vector<svc::PlanRequest> requests;
  for (const double te_core_days : {1e6, 2e6, 3e6, 5e6, 1e7}) {
    for (const auto& failure_case : exp::paper_failure_cases()) {
      const auto cfg = exp::make_fti_system(te_core_days, failure_case);
      for (const auto solution : opt::all_solutions()) {
        requests.push_back(
            {cfg, solution, {},
             common::strf("te=%.0fm|%s|%s", te_core_days / 1e6,
                          failure_case.name.c_str(),
                          opt::to_string(solution).c_str())});
      }
    }
  }
  return requests;
}

double time_sweep(svc::SweepEngine& engine,
                  const std::vector<svc::PlanRequest>& requests,
                  std::vector<svc::PlanReport>* reports,
                  svc::SweepStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  *reports = engine.plan_sweep(requests, stats);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace mlcr;
  const auto requests = make_grid();
  bench::print_header(common::strf(
      "Sweep engine throughput — %zu-request what-if grid", requests.size()));

  std::vector<svc::PlanReport> serial_reports, parallel_reports,
      cold_reports, warm_reports, small_cold_reports, small_warm_reports;
  svc::SweepStats serial_stats, parallel_stats, cold_stats, warm_stats,
      small_cold_stats, small_warm_stats;

  svc::SweepEngine serial({/*threads=*/1, /*cache_capacity=*/0});
  const double serial_s =
      time_sweep(serial, requests, &serial_reports, &serial_stats);

  svc::SweepEngine parallel({/*threads=*/0, /*cache_capacity=*/0});
  const double parallel_s =
      time_sweep(parallel, requests, &parallel_reports, &parallel_stats);

  svc::SweepEngine cached({/*threads=*/0, /*cache_capacity=*/65536});
  const double cold_s = time_sweep(cached, requests, &cold_reports,
                                   &cold_stats);
  const double warm_s = time_sweep(cached, requests, &warm_reports,
                                   &warm_stats);

  // LRU demonstration: a cache smaller than the grid must keep evicting on
  // the warm re-sweep (the old drop-on-full cache would report 0 evictions
  // and simply stop memoizing).
  const std::size_t small_capacity = 64;
  svc::SweepEngine small({/*threads=*/0, /*cache_capacity=*/small_capacity});
  (void)time_sweep(small, requests, &small_cold_reports, &small_cold_stats);
  (void)time_sweep(small, requests, &small_warm_reports, &small_warm_stats);

  // Determinism spot check: parallel values must equal the serial baseline.
  std::size_t mismatches = 0, warm_hits = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (serial_reports[i].plan().scale != parallel_reports[i].plan().scale ||
        serial_reports[i].wallclock() != parallel_reports[i].wallclock()) {
      ++mismatches;
    }
    if (warm_reports[i].cache_hit) ++warm_hits;
  }

  common::Table table({"engine", "threads", "time (s)", "requests/s",
                       "speedup vs serial"});
  auto row = [&](const char* name, std::size_t threads, double seconds) {
    table.add_row({name, common::strf("%zu", threads),
                   common::strf("%.3f", seconds),
                   common::strf("%.1f", requests.size() / seconds),
                   common::strf("%.2fx", serial_s / seconds)});
  };
  row("serial (no cache)", 1, serial_s);
  row("parallel (no cache)", parallel.threads(), parallel_s);
  row("parallel cold (cache)", cached.threads(), cold_s);
  row("parallel warm (cache)", cached.threads(), warm_s);
  table.print();

  common::Table stats_table({"sweep", "solved", "cache hits", "dedup",
                             "evictions", "errors", "solve p50 (ms)",
                             "solve p90 (ms)", "solve max (ms)",
                             "queue wait max (ms)"});
  auto stats_row = [&](const char* name, const svc::SweepStats& s) {
    stats_table.add_row(
        {name, common::strf("%zu", s.solved),
         common::strf("%zu", s.cache_hits), common::strf("%zu", s.dedup_hits),
         common::strf("%zu", s.evictions), common::strf("%zu", s.errors),
         common::strf("%.2f", 1e3 * s.solve_seconds_p50),
         common::strf("%.2f", 1e3 * s.solve_seconds_p90),
         common::strf("%.2f", 1e3 * s.solve_seconds_max),
         common::strf("%.2f", 1e3 * s.queue_wait_seconds_max)});
  };
  std::printf("\nPer-sweep aggregates (SweepStats):\n");
  stats_row("serial", serial_stats);
  stats_row("parallel", parallel_stats);
  stats_row("cached cold", cold_stats);
  stats_row("cached warm", warm_stats);
  stats_row(common::strf("small cold (cap=%zu)", small_capacity).c_str(),
            small_cold_stats);
  stats_row(common::strf("small warm (cap=%zu)", small_capacity).c_str(),
            small_warm_stats);
  stats_table.print();

  std::printf("\nEngine-lifetime metrics (cached engine):\n");
  cached.metrics().print();

  const bool evictions_ok = small_cold_stats.evictions > 0 &&
                            small_warm_stats.evictions > 0;
  std::printf(
      "\n  parallel vs serial: %.2fx (target >= 3x on a multi-core host)\n"
      "  warm vs cold sweep: %.2fx (target >= 10x)\n"
      "  parallel/serial mismatches: %zu (must be 0)\n"
      "  warm-sweep cache hits: %zu / %zu\n"
      "  small-cache evictions cold/warm: %zu / %zu (warm must be > 0: LRU\n"
      "  keeps replacing instead of dropping new entries)\n",
      serial_s / parallel_s, cold_s / warm_s, mismatches, warm_hits,
      requests.size(), small_cold_stats.evictions, small_warm_stats.evictions);
  return mismatches == 0 && evictions_ok ? 0 : 1;
}
