// Serving-layer throughput: N concurrent clients x M requests against an
// in-process mlcrd core (net::Server on an ephemeral loopback port), now
// reactor-per-core sharded (DESIGN.md §12).
//
// Two phases over the same 12-request working set (3 paper failure cases x
// 4 solution families):
//   cold  first pass, solver-bound — every unique request runs Algorithm 1
//         once (singleflight coalesces concurrent duplicates)
//   warm  re-request of the same set, cache-hit-bound — measures what the
//         serving layer itself costs (framing, admission, scheduling)
// For each phase: total throughput and client-observed latency percentiles
// (p50/p95/p99 via common::metrics::percentile).  Results go to stdout and
// to BENCH_net.json (artifact version "v": 2; an existing artifact with a
// NEWER "v" is never overwritten — downgrade protection for stacked
// checkouts).
//
// Acceptance (exit code): every request is accepted (queue 256 never
// fills at this concurrency).  The multi-core comparisons — cold >= 5x
// the pre-reactor baseline (10.1k req/s on the reference host) and
// warm > cold — are reported but informational by default, because the
// absolute baseline is one host's number and both phases can be
// cache-hit-bound on small machines; pass --strict on a perf-tracking
// host to turn them into hard gates.  On a single-hardware-thread runner
// they print a visible SKIP line instead — there is no parallelism to
// measure.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "net/client.h"
#include "net/json.h"
#include "net/server.h"

namespace {

using namespace mlcr;

/// Artifact schema version written to BENCH_net.json.
constexpr long kArtifactVersion = 2;

/// The pre-reactor single-loop cold throughput on the reference multi-core
/// host; the reactor redesign must clear 5x this.
constexpr double kColdBaselineRps = 10165.0;

std::vector<svc::PlanRequest> working_set() {
  std::vector<svc::PlanRequest> requests;
  const auto cases = exp::paper_failure_cases();
  for (std::size_t c = 0; c < 3; ++c) {
    const auto cfg = exp::make_fti_system(3e6, cases[c]);
    for (const auto solution : opt::all_solutions()) {
      requests.push_back({cfg, solution, {}, cases[c].name});
    }
  }
  return requests;
}

struct Phase {
  double seconds = 0.0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::vector<double> latencies;  ///< client-observed, seconds
};

Phase run_phase(std::uint16_t port, net::Codec codec, std::size_t clients,
                std::size_t per_client,
                const std::vector<svc::PlanRequest>& requests) {
  Phase phase;
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::size_t> accepted{0}, rejected{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client({.port = port, .codec = codec});
      latencies[c].reserve(per_client);
      for (std::size_t j = 0; j < per_client; ++j) {
        const auto& request = requests[(c * per_client + j) % requests.size()];
        const auto sent = std::chrono::steady_clock::now();
        const net::Response response = client.plan(request);
        latencies[c].push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          sent)
                .count());
        (response.accepted ? accepted : rejected)++;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  phase.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  for (auto& per_thread : latencies) {
    phase.latencies.insert(phase.latencies.end(), per_thread.begin(),
                           per_thread.end());
  }
  phase.accepted = accepted.load();
  phase.rejected = rejected.load();
  return phase;
}

double rps(const Phase& phase) {
  return static_cast<double>(phase.accepted + phase.rejected) / phase.seconds;
}

net::json::Value phase_json(const Phase& phase) {
  using common::metrics::percentile;
  const double n = static_cast<double>(phase.latencies.size());
  double sum = 0.0;
  for (const double v : phase.latencies) sum += v;
  return net::json::Object{
      {"seconds", phase.seconds},
      {"requests", static_cast<long>(phase.accepted + phase.rejected)},
      {"accepted", static_cast<long>(phase.accepted)},
      {"rejected", static_cast<long>(phase.rejected)},
      {"requests_per_second", rps(phase)},
      {"latency_seconds",
       net::json::Object{{"mean", n > 0 ? sum / n : 0.0},
                         {"p50", percentile(phase.latencies, 0.50)},
                         {"p95", percentile(phase.latencies, 0.95)},
                         {"p99", percentile(phase.latencies, 0.99)}}}};
}

void print_phase(const char* name, const Phase& phase) {
  using common::metrics::percentile;
  std::printf(
      "  %-5s %6zu requests in %7.3f s -> %9.1f req/s   "
      "p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  (rejected %zu)\n",
      name, phase.accepted + phase.rejected, phase.seconds, rps(phase),
      1e3 * percentile(phase.latencies, 0.50),
      1e3 * percentile(phase.latencies, 0.95),
      1e3 * percentile(phase.latencies, 0.99), phase.rejected);
}

/// The "v" of an existing artifact at `path`: 0 when the file is absent,
/// unreadable, or pre-versioning (no "v" member).
long existing_artifact_version(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return 0;
  std::string text;
  char chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, got);
  }
  std::fclose(file);
  std::string error;
  const auto value = net::json::parse(text, &error);
  if (!value.has_value()) return 0;
  const net::json::Value* v = value->find("v");
  if (v == nullptr || !v->is_number()) return 0;
  return static_cast<long>(v->as_number());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 8;
  std::size_t per_client = 250;
  std::size_t shards = 0;  // 0 = one per core (ServerOptions default policy)
  net::Codec codec = net::Codec::kJson;
  std::string out = "BENCH_net.json";
  bool strict = false;  // baseline comparisons become hard gates
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--strict") {
      strict = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr,
                   "usage: bench_net [--clients N] [--requests M] "
                   "[--shards S] [--codec json|binary] [--out FILE] "
                   "[--strict]\n");
      return 1;
    }
    const char* value = argv[++i];
    if (flag == "--clients") clients = std::atol(value);
    else if (flag == "--requests") per_client = std::atol(value);
    else if (flag == "--shards") shards = std::atol(value);
    else if (flag == "--out") out = value;
    else if (flag == "--codec") {
      if (!net::codec_from_string(value, &codec)) {
        std::fprintf(stderr, "bench_net: unknown codec \"%s\"\n", value);
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_net [--clients N] [--requests M] "
                   "[--shards S] [--codec json|binary] [--out FILE] "
                   "[--strict]\n");
      return 1;
    }
  }

  // Downgrade protection: never clobber an artifact written by a newer
  // schema — a stacked checkout running an older binary must fail loudly.
  const long existing_v = existing_artifact_version(out);
  if (existing_v > kArtifactVersion) {
    std::fprintf(stderr,
                 "bench_net: refusing to overwrite %s: its \"v\" is %ld, "
                 "newer than this binary's %ld\n",
                 out.c_str(), existing_v, kArtifactVersion);
    return 1;
  }

  const std::size_t hardware_threads = std::thread::hardware_concurrency();
  const auto requests = working_set();
  bench::print_header(common::strf(
      "mlcrd serving throughput — %zu clients x %zu requests, %zu-plan "
      "working set, %s codec, %zu hardware threads",
      clients, per_client, requests.size(), net::to_string(codec).c_str(),
      hardware_threads));

  net::ServerOptions options;
  options.port = 0;
  options.shards = shards;
  options.queue_capacity = 256;
  net::Server server(options);
  server.start();

  // Cold: solver-bound (each unique request runs Algorithm 1 once —
  // singleflight coalesces concurrent duplicates, the rest of the pass
  // hits the warming cache).
  const Phase cold =
      run_phase(server.port(), codec, clients, per_client, requests);
  // Warm: pure serving-layer cost — every plan is a cache hit.
  const Phase warm =
      run_phase(server.port(), codec, clients, per_client, requests);

  print_phase("cold", cold);
  print_phase("warm", warm);

  auto& metrics = server.metrics();
  const auto shard_count =
      static_cast<std::size_t>(metrics.gauge("net.shards").value());
  net::json::Array per_shard_accepted;
  std::printf("\n  shards %zu, per-shard accepts:", shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    const auto accepted = static_cast<long>(
        metrics.counter("net.shard." + std::to_string(i) + ".accepted")
            .value());
    per_shard_accepted.push_back(accepted);
    std::printf(" %ld", accepted);
  }
  const auto sf_leaders =
      static_cast<long>(metrics.counter("net.singleflight.leaders").value());
  const auto sf_joined =
      static_cast<long>(metrics.counter("net.singleflight.joined").value());
  std::printf("\n  singleflight: %ld leaders, %ld joined\n", sf_leaders,
              sf_joined);
  std::printf("\nDaemon-side view:\n");
  metrics.print();

  // Machine-readable mirror of every prose SKIP below, so tooling can tell
  // "passed" from "not measured" without parsing stdout.
  net::json::Array skips;
  if (hardware_threads <= 1) {
    skips.push_back(std::string("multicore_throughput"));
  }

  const net::json::Value summary = net::json::Object{
      {"bench", "bench_net"},
      {"v", kArtifactVersion},
      {"skips", std::move(skips)},
      {"clients", static_cast<long>(clients)},
      {"requests_per_client", static_cast<long>(per_client)},
      {"working_set", static_cast<long>(requests.size())},
      {"hardware_threads", static_cast<long>(hardware_threads)},
      {"shards", static_cast<long>(shard_count)},
      {"codec", net::to_string(codec)},
      {"per_shard_accepted", per_shard_accepted},
      {"singleflight",
       net::json::Object{{"leaders", sf_leaders}, {"joined", sf_joined}}},
      {"solver_threads",
       static_cast<long>(metrics.gauge("net.solver_threads").value())},
      {"cold", phase_json(cold)},
      {"warm", phase_json(warm)}};
  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_net: cannot write %s\n", out.c_str());
    return 1;
  }
  const std::string rendered = net::json::dump(summary);
  std::fwrite(rendered.data(), 1, rendered.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("\nwrote %s\n", out.c_str());

  // Universal gates: nothing rejected, nothing lost.
  bool ok = cold.rejected == 0 && warm.rejected == 0 &&
            cold.accepted + warm.accepted == 2 * clients * per_client;
  std::printf("  rejections %zu (must be 0)\n",
              cold.rejected + warm.rejected);

  // Multicore comparisons: only meaningful when there is parallel hardware
  // for the shards to spread over.  The cold target is an absolute number
  // from the reference host, so by default a miss is reported but does not
  // fail the run (a 2-core CI box is simply slower hardware); --strict
  // turns both comparisons into hard gates for perf-tracking hosts.
  if (hardware_threads <= 1) {
    std::printf(
        "  SKIP: multicore throughput comparisons (hardware_threads=%zu; "
        "need >1 to measure reactor scaling)\n",
        hardware_threads);
  } else {
    const bool cold_ok = rps(cold) >= 5.0 * kColdBaselineRps;
    const bool warm_ok = rps(warm) > rps(cold);
    const char* miss = strict ? "FAIL" : "below target (informational)";
    std::printf(
        "  cold %.0f req/s (reference target >= %.0f = 5x %.0f baseline): "
        "%s\n"
        "  warm %.0f req/s (reference target > cold): %s\n",
        rps(cold), 5.0 * kColdBaselineRps, kColdBaselineRps,
        cold_ok ? "ok" : miss, rps(warm), warm_ok ? "ok" : miss);
    if (strict) ok = ok && cold_ok && warm_ok;
  }
  return ok ? 0 : 1;
}
