// Serving-layer throughput: N concurrent clients x M requests against an
// in-process mlcrd core (net::Server on an ephemeral loopback port).
//
// Two phases over the same 12-request working set (3 paper failure cases x
// 4 solution families):
//   cold  first pass, solver-bound — every request runs Algorithm 1
//   warm  re-request of the same set, cache-hit-bound — measures what the
//         serving layer itself costs (framing, admission, scheduling)
// For each phase: total throughput and client-observed latency percentiles
// (p50/p95/p99 via common::metrics::percentile).  Results go to stdout and
// to BENCH_net.json (repo root; written with the daemon's own JSON writer).
//
// Acceptance: every request is accepted (queue 256 never fills at this
// concurrency) and the warm phase clears 1k requests/s on a multi-core
// host — transport overhead must stay microseconds-per-request.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "net/client.h"
#include "net/json.h"
#include "net/server.h"

namespace {

using namespace mlcr;

std::vector<svc::PlanRequest> working_set() {
  std::vector<svc::PlanRequest> requests;
  const auto cases = exp::paper_failure_cases();
  for (std::size_t c = 0; c < 3; ++c) {
    const auto cfg = exp::make_fti_system(3e6, cases[c]);
    for (const auto solution : opt::all_solutions()) {
      requests.push_back({cfg, solution, {}, cases[c].name});
    }
  }
  return requests;
}

struct Phase {
  double seconds = 0.0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::vector<double> latencies;  ///< client-observed, seconds
};

Phase run_phase(std::uint16_t port, std::size_t clients,
                std::size_t per_client,
                const std::vector<svc::PlanRequest>& requests) {
  Phase phase;
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::size_t> accepted{0}, rejected{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::Client client({.port = port});
      latencies[c].reserve(per_client);
      for (std::size_t j = 0; j < per_client; ++j) {
        const auto& request = requests[(c * per_client + j) % requests.size()];
        const auto sent = std::chrono::steady_clock::now();
        const net::Response response = client.plan(request);
        latencies[c].push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          sent)
                .count());
        (response.accepted ? accepted : rejected)++;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  phase.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  for (auto& per_thread : latencies) {
    phase.latencies.insert(phase.latencies.end(), per_thread.begin(),
                           per_thread.end());
  }
  phase.accepted = accepted.load();
  phase.rejected = rejected.load();
  return phase;
}

net::json::Value phase_json(const Phase& phase) {
  using common::metrics::percentile;
  const double n = static_cast<double>(phase.latencies.size());
  double sum = 0.0;
  for (const double v : phase.latencies) sum += v;
  return net::json::Object{
      {"seconds", phase.seconds},
      {"requests", static_cast<long>(phase.accepted + phase.rejected)},
      {"accepted", static_cast<long>(phase.accepted)},
      {"rejected", static_cast<long>(phase.rejected)},
      {"requests_per_second",
       static_cast<double>(phase.accepted + phase.rejected) / phase.seconds},
      {"latency_seconds",
       net::json::Object{{"mean", n > 0 ? sum / n : 0.0},
                         {"p50", percentile(phase.latencies, 0.50)},
                         {"p95", percentile(phase.latencies, 0.95)},
                         {"p99", percentile(phase.latencies, 0.99)}}}};
}

void print_phase(const char* name, const Phase& phase) {
  using common::metrics::percentile;
  std::printf(
      "  %-5s %6zu requests in %7.3f s -> %9.1f req/s   "
      "p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  (rejected %zu)\n",
      name, phase.accepted + phase.rejected, phase.seconds,
      static_cast<double>(phase.accepted + phase.rejected) / phase.seconds,
      1e3 * percentile(phase.latencies, 0.50),
      1e3 * percentile(phase.latencies, 0.95),
      1e3 * percentile(phase.latencies, 0.99), phase.rejected);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 8;
  std::size_t per_client = 250;
  std::string out = "BENCH_net.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--clients") clients = std::atol(argv[i + 1]);
    else if (flag == "--requests") per_client = std::atol(argv[i + 1]);
    else if (flag == "--out") out = argv[i + 1];
  }

  const auto requests = working_set();
  bench::print_header(common::strf(
      "mlcrd serving throughput — %zu clients x %zu requests, %zu-plan "
      "working set",
      clients, per_client, requests.size()));

  net::ServerOptions options;
  options.port = 0;
  options.io_threads = clients;  // one handler per concurrent connection
  options.queue_capacity = 256;
  net::Server server(options);
  server.start();

  // Cold: solver-bound (each unique request runs Algorithm 1 once, the
  // rest of the pass already hits the warming cache).
  const Phase cold = run_phase(server.port(), clients, per_client, requests);
  // Warm: pure serving-layer cost — every plan is a cache hit.
  const Phase warm = run_phase(server.port(), clients, per_client, requests);

  print_phase("cold", cold);
  print_phase("warm", warm);
  std::printf("\nDaemon-side view:\n");
  server.metrics().print();

  const net::json::Value summary = net::json::Object{
      {"bench", "bench_net"},
      {"clients", static_cast<long>(clients)},
      {"requests_per_client", static_cast<long>(per_client)},
      {"working_set", static_cast<long>(requests.size())},
      {"solver_threads",
       static_cast<long>(server.metrics().gauge("net.solver_threads").value())},
      {"cold", phase_json(cold)},
      {"warm", phase_json(warm)}};
  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_net: cannot write %s\n", out.c_str());
    return 1;
  }
  const std::string rendered = net::json::dump(summary);
  std::fwrite(rendered.data(), 1, rendered.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("\nwrote %s\n", out.c_str());

  const double warm_rps =
      static_cast<double>(warm.accepted + warm.rejected) / warm.seconds;
  const bool ok = cold.rejected == 0 && warm.rejected == 0 &&
                  cold.accepted + warm.accepted ==
                      2 * clients * per_client &&
                  warm_rps > 1000.0;
  std::printf("  warm throughput %.0f req/s (target > 1000), rejections %zu "
              "(must be 0)\n",
              warm_rps, cold.rejected + warm.rejected);
  return ok ? 0 : 1;
}
