// Monte-Carlo validation pipeline bench: replica throughput (serial vs
// parallel fan-out) plus a Fig-4-style plan-vs-simulated error table over
// the fusion-scale working set (te=30 core-days, N*=1024 — the regime the
// paper validated against real 128-1024-core runs with <4% difference).
//
// Three gates, exit 1 when any fails:
//   determinism  the 1-thread and 8-thread SimReports are byte-identical
//                under net::deterministic_fingerprint;
//   error        every |wallclock_error| < 5%;
//   speedup      parallel replica throughput >= 4x serial at 8 threads —
//                only enforced when the host actually has >= 8 hardware
//                threads (single-core CI still checks the first two).
// Results go to stdout and to BENCH_sim.json (repo root, written with the
// daemon's JSON writer so the file parses with the same codec it serves).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/json.h"
#include "net/protocol.h"
#include "svc/sim_request.h"
#include "svc/sweep_engine.h"

namespace {

using namespace mlcr;

std::vector<svc::SimRequest> working_set(int runs) {
  std::vector<svc::SimRequest> requests;
  const exp::FailureCase cases[] = {{"24-18-12-6", {24, 18, 12, 6}},
                                    {"16-12-8-4", {16, 12, 8, 4}},
                                    {"8-6-4-2", {8, 6, 4, 2}}};
  for (const auto& failure_case : cases) {
    svc::SimRequest request{
        exp::make_fti_system(/*te_core_days=*/30.0, failure_case,
                             /*n_star=*/1024.0),
        opt::Solution::kMultilevelOptScale,
        {},
        {},
        failure_case.name};
    request.monte_carlo.runs = runs;
    request.monte_carlo.seed = 24141;
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Replicas per second of one monte_carlo call at the given width.
double replica_throughput(const model::SystemConfig& cfg,
                          const sim::Schedule& schedule, int runs,
                          std::size_t threads) {
  sim::MonteCarloOptions options;
  options.runs = runs;
  options.seed = 24141;
  options.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const auto result = sim::monte_carlo(cfg, schedule, options);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  (void)result;
  return seconds > 0.0 ? static_cast<double>(runs) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 100;
  std::string out = "BENCH_sim.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--runs") runs = std::atoi(argv[i + 1]);
    else if (flag == "--out") out = argv[i + 1];
  }

  const unsigned hw = std::thread::hardware_concurrency();
  bench::print_header(common::strf(
      "Monte-Carlo validation pipeline — %d replicas/request, %u hardware "
      "threads",
      runs, hw));

  // --- determinism gate: 1 thread == 8 threads, byte for byte -----------
  const auto requests = working_set(runs);
  svc::SweepEngine narrow({.threads = 1});
  svc::SweepEngine wide({.threads = 8});
  bool deterministic = true;
  for (const auto& request : requests) {
    const auto a = narrow.validate_one(request);
    const auto b = wide.validate_one(request);
    const bool same =
        a.has_value() && b.has_value() &&
        net::deterministic_fingerprint(*a) == net::deterministic_fingerprint(*b);
    deterministic = deterministic && same;
    std::printf("  determinism %-12s 1 thread == 8 threads: %s\n",
                request.label.c_str(), same ? "identical" : "MISMATCH");
  }

  // --- Fig-4-style error table (reports reused from the narrow engine) ---
  std::printf("\n  %-12s %-14s %-14s %-9s %-9s %-9s\n", "case",
              "analytic E(Tw)", "simulated", "err(wct)", "err(prod)",
              "err(ckpt)");
  double worst_error = 0.0;
  net::json::Array cases_json;
  for (const auto& request : requests) {
    const auto report = narrow.validate_one(request);
    if (!report.has_value() || !report->ok()) {
      std::printf("  %-12s FAILED: %s\n", request.label.c_str(),
                  report.has_value() ? report->message.c_str() : "expired");
      worst_error = 1.0;
      continue;
    }
    worst_error = std::max(worst_error, std::abs(report->wallclock_error));
    std::printf("  %-12s %-14.6e %-14.6e %+8.2f%% %+8.2f%% %+8.2f%%\n",
                report->label.c_str(), report->plan.wallclock(),
                report->wallclock.mean, 100.0 * report->wallclock_error,
                100.0 * report->portion_errors.productive,
                100.0 * report->portion_errors.checkpoint);
    cases_json.push_back(net::json::Object{
        {"case", report->label},
        {"analytic_wallclock", report->plan.wallclock()},
        {"simulated_wallclock", report->wallclock.mean},
        {"wallclock_error", report->wallclock_error},
        {"productive_error", report->portion_errors.productive},
        {"checkpoint_error", report->portion_errors.checkpoint},
        {"restart_error", report->portion_errors.restart},
        {"rollback_error", report->portion_errors.rollback},
        {"incomplete_runs", report->incomplete_runs}});
  }

  // --- replica throughput: serial vs 8-way fan-out ----------------------
  const auto& probe = requests.front();
  const auto planned = *narrow.plan_one(probe.plan_request());
  const auto schedule = sim::Schedule::from_plan(
      probe.config, planned.planned.full_plan, planned.planned.level_enabled);
  const double serial_rps =
      replica_throughput(probe.config, schedule, runs, 1);
  const double parallel_rps =
      replica_throughput(probe.config, schedule, runs, 8);
  const double speedup = serial_rps > 0.0 ? parallel_rps / serial_rps : 0.0;
  std::printf(
      "\n  replica throughput: serial %8.1f runs/s   8 threads %8.1f "
      "runs/s   speedup %.2fx\n",
      serial_rps, parallel_rps, speedup);

  const net::json::Value summary = net::json::Object{
      {"bench", "bench_sim"},
      {"runs", static_cast<long>(runs)},
      {"hardware_threads", static_cast<long>(hw)},
      {"deterministic", deterministic},
      {"worst_abs_wallclock_error", worst_error},
      {"serial_replicas_per_second", serial_rps},
      {"parallel_replicas_per_second", parallel_rps},
      {"speedup_8_threads", speedup},
      {"cases", std::move(cases_json)}};
  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_sim: cannot write %s\n", out.c_str());
    return 1;
  }
  const std::string rendered = net::json::dump(summary);
  std::fwrite(rendered.data(), 1, rendered.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("\nwrote %s\n", out.c_str());

  // Speedup is a hardware property: gate it only where 8 real threads
  // exist, but always print it so regressions are visible in CI logs.
  const bool speedup_ok = hw < 8 || speedup >= 4.0;
  const bool error_ok = worst_error < 0.05;
  std::printf(
      "  gates: determinism %s   worst error %.2f%% (< 5%%) %s   speedup "
      "%.2fx (>= 4x at >= 8 hw threads) %s\n",
      deterministic ? "ok" : "FAIL", 100.0 * worst_error,
      error_ok ? "ok" : "FAIL", speedup,
      speedup_ok ? "ok" : "FAIL");
  return deterministic && error_ok && speedup_ok ? 0 : 1;
}
