// Monte-Carlo validation pipeline bench: replica throughput (serial vs
// parallel fan-out) plus a Fig-4-style plan-vs-simulated error table over
// the fusion-scale working set (te=30 core-days, N*=1024 — the regime the
// paper validated against real 128-1024-core runs with <4% difference).
//
// Gates, exit 1 when any fails:
//   determinism  the 1-thread and 8-thread SimReports are byte-identical
//                under net::deterministic_fingerprint;
//   error        every |wallclock_error| < 5%;
//   speedup      parallel replica throughput >= 4x serial at 8 threads —
//                enforced when the host has >= 8 hardware threads, printed
//                as a visible SKIP on a single-thread host (no parallel
//                hardware to measure), informational in between;
//   serial       serial throughput vs the recorded pre-vectorization
//                baseline — an absolute number from the reference host, so
//                informational unless --strict (perf-tracking hosts).
//   des error    the DES backend's model-vs-simulated error must sit in the
//                same < 5% band (fewer replicas — the rank-level replay is
//                orders of magnitude more expensive per run).
// Results go to stdout and to BENCH_sim.json (artifact version "v": 3,
// written with the daemon's JSON writer so the file parses with the same
// codec it serves).  v3 adds per-backend throughput legs ("backends"), the
// model-vs-DES error table ("des_cases"), and a machine-readable "skips"
// array mirroring every prose SKIP line, so tooling can tell "passed" from
// "not measured" without parsing stdout.  An existing artifact with a newer
// "v", or one recorded on a wider host, is never clobbered — rerun with
// --out elsewhere.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "net/json.h"
#include "net/protocol.h"
#include "sim/backend.h"
#include "svc/sim_request.h"
#include "svc/sweep_engine.h"

namespace {

using namespace mlcr;

constexpr long kArtifactVersion = 3;

/// Serial replicas/s recorded by the v1 bench on the reference host before
/// the kernel was vectorized (fresh Rng + scalar Welford per replica).  The
/// post-fix kernel must clear 2x this on comparable hardware.
constexpr double kSerialBaselineRps = 97807.0;

std::vector<svc::SimRequest> working_set(int runs) {
  std::vector<svc::SimRequest> requests;
  const exp::FailureCase cases[] = {{"24-18-12-6", {24, 18, 12, 6}},
                                    {"16-12-8-4", {16, 12, 8, 4}},
                                    {"8-6-4-2", {8, 6, 4, 2}}};
  for (const auto& failure_case : cases) {
    svc::SimRequest request{
        exp::make_fti_system(/*te_core_days=*/30.0, failure_case,
                             /*n_star=*/1024.0),
        opt::Solution::kMultilevelOptScale,
        {},
        {},
        svc::SimBackend::kCoarse,
        failure_case.name};
    request.monte_carlo.runs = runs;
    request.monte_carlo.seed = 24141;
    requests.push_back(std::move(request));
  }
  return requests;
}

/// Replicas per second through the given backend: best of repeated timed
/// Backend::run calls (>= 3 reps, >= 0.3 s total), so a scheduler stall on
/// a noisy CI box cannot masquerade as a kernel regression.  The best rep
/// measures capability; the mean would measure the box's load average.
/// `pool == nullptr` measures the serial path.
double replica_throughput(const sim::Backend& backend,
                          const model::SystemConfig& cfg,
                          const sim::Schedule& schedule, int runs,
                          common::ThreadPool* pool) {
  sim::MonteCarloOptions options;
  options.runs = runs;
  options.seed = 24141;
  double best = 0.0;
  double total_seconds = 0.0;
  for (int rep = 0; rep < 3 || total_seconds < 0.3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = backend.run(cfg, schedule, options, pool);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    (void)result;
    total_seconds += seconds;
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(runs) / seconds);
    }
  }
  return best;
}

/// Reads an existing artifact's "v" and "hardware_threads"; both 0 when
/// the file is absent, unreadable, or pre-versioning.
void existing_artifact(const std::string& path, long* version,
                       long* hardware_threads) {
  *version = 0;
  *hardware_threads = 0;
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return;
  std::string text;
  char chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, got);
  }
  std::fclose(file);
  std::string error;
  const auto value = net::json::parse(text, &error);
  if (!value.has_value()) return;
  if (const net::json::Value* v = value->find("v");
      v != nullptr && v->is_number()) {
    *version = static_cast<long>(v->as_number());
  }
  if (const net::json::Value* hw = value->find("hardware_threads");
      hw != nullptr && hw->is_number()) {
    *hardware_threads = static_cast<long>(hw->as_number());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 100;
  std::string out = "BENCH_sim.json";
  bool strict = false;  // absolute-baseline comparisons become hard gates
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--strict") {
      strict = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr,
                   "usage: bench_sim [--runs N] [--out FILE] [--strict]\n");
      return 1;
    }
    const char* value = argv[++i];
    if (flag == "--runs") runs = std::atoi(value);
    else if (flag == "--out") out = value;
    else {
      std::fprintf(stderr,
                   "usage: bench_sim [--runs N] [--out FILE] [--strict]\n");
      return 1;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();

  // Downgrade protection, bench_net style: never clobber an artifact
  // written by a newer schema.  Additionally never let a narrow box
  // overwrite numbers recorded on a wider one — speedup_8_threads from an
  // 8-core host is the figure of record; a 1-core rerun would replace it
  // with a measurement of nothing.
  long existing_v = 0;
  long existing_hw = 0;
  existing_artifact(out, &existing_v, &existing_hw);
  if (existing_v > kArtifactVersion) {
    std::fprintf(stderr,
                 "bench_sim: refusing to overwrite %s: its \"v\" is %ld, "
                 "newer than this binary's %ld\n",
                 out.c_str(), existing_v, kArtifactVersion);
    return 1;
  }
  if (existing_v == kArtifactVersion &&
      existing_hw > static_cast<long>(hw)) {
    std::fprintf(stderr,
                 "bench_sim: refusing to overwrite %s: it was recorded with "
                 "%ld hardware threads, this host has %u (rerun with --out "
                 "to write elsewhere)\n",
                 out.c_str(), existing_hw, hw);
    return 1;
  }

  bench::print_header(common::strf(
      "Monte-Carlo validation pipeline — %d replicas/request, %u hardware "
      "threads",
      runs, hw));

  // --- determinism gate: 1 thread == 8 threads, byte for byte -----------
  const auto requests = working_set(runs);
  svc::SweepEngine narrow({.threads = 1});
  svc::SweepEngine wide({.threads = 8});
  bool deterministic = true;
  for (const auto& request : requests) {
    const auto a = narrow.validate_one(request);
    const auto b = wide.validate_one(request);
    const bool same =
        a.has_value() && b.has_value() &&
        net::deterministic_fingerprint(*a) == net::deterministic_fingerprint(*b);
    deterministic = deterministic && same;
    std::printf("  determinism %-12s 1 thread == 8 threads: %s\n",
                request.label.c_str(), same ? "identical" : "MISMATCH");
  }

  // --- Fig-4-style error table (reports reused from the narrow engine) ---
  std::printf("\n  %-12s %-14s %-14s %-9s %-9s %-9s\n", "case",
              "analytic E(Tw)", "simulated", "err(wct)", "err(prod)",
              "err(ckpt)");
  double worst_error = 0.0;
  net::json::Array cases_json;
  for (const auto& request : requests) {
    const auto report = narrow.validate_one(request);
    if (!report.has_value() || !report->ok()) {
      std::printf("  %-12s FAILED: %s\n", request.label.c_str(),
                  report.has_value() ? report->message.c_str() : "expired");
      worst_error = 1.0;
      continue;
    }
    worst_error = std::max(worst_error, std::abs(report->wallclock_error));
    std::printf("  %-12s %-14.6e %-14.6e %+8.2f%% %+8.2f%% %+8.2f%%\n",
                report->label.c_str(), report->plan.wallclock(),
                report->wallclock.mean, 100.0 * report->wallclock_error,
                100.0 * report->portion_errors.productive,
                100.0 * report->portion_errors.checkpoint);
    cases_json.push_back(net::json::Object{
        {"case", report->label},
        {"analytic_wallclock", report->plan.wallclock()},
        {"simulated_wallclock", report->wallclock.mean},
        {"wallclock_error", report->wallclock_error},
        {"productive_error", report->portion_errors.productive},
        {"checkpoint_error", report->portion_errors.checkpoint},
        {"restart_error", report->portion_errors.restart},
        {"rollback_error", report->portion_errors.rollback},
        {"incomplete_runs", report->incomplete_runs}});
  }

  // --- model-vs-DES error legs ------------------------------------------
  // The same working set through the DES backend: the rank-level replay
  // costs orders of magnitude more per replica, so these legs run a reduced
  // replica count.  The gate is the same 5% band, and the 1-vs-8-thread
  // fingerprint comparison extends the determinism gate to the DES driver.
  const int des_runs = std::min(runs, 16);
  std::printf("\n  %-12s %-14s %-14s %-9s %-10s\n", "case (des)",
              "analytic E(Tw)", "des simulated", "err(wct)", "vs coarse");
  double worst_des_error = 0.0;
  net::json::Array des_cases_json;
  for (const auto& request : requests) {
    svc::SimRequest des = request;
    des.backend = svc::SimBackend::kDes;
    des.monte_carlo.runs = des_runs;
    const auto a = narrow.validate_one(des);
    const auto b = wide.validate_one(des);
    const bool same =
        a.has_value() && b.has_value() && a->ok() &&
        net::deterministic_fingerprint(*a) == net::deterministic_fingerprint(*b);
    deterministic = deterministic && same;
    if (!a.has_value() || !a->ok()) {
      std::printf("  %-12s FAILED: %s\n", des.label.c_str(),
                  a.has_value() ? a->message.c_str() : "expired");
      worst_des_error = 1.0;
      continue;
    }
    worst_des_error = std::max(worst_des_error, std::abs(a->wallclock_error));
    // The coarse report for the same case is already cached in `narrow`.
    const auto coarse = narrow.validate_one(request);
    const double vs_coarse =
        coarse.has_value() && coarse->wallclock.mean > 0.0
            ? a->wallclock.mean / coarse->wallclock.mean
            : 0.0;
    std::printf("  %-12s %-14.6e %-14.6e %+8.2f%% %9.4fx%s\n",
                a->label.c_str(), a->plan.wallclock(), a->wallclock.mean,
                100.0 * a->wallclock_error, vs_coarse,
                same ? "" : "  NONDETERMINISTIC");
    des_cases_json.push_back(net::json::Object{
        {"case", a->label},
        {"analytic_wallclock", a->plan.wallclock()},
        {"simulated_wallclock", a->wallclock.mean},
        {"wallclock_error", a->wallclock_error},
        {"vs_coarse_ratio", vs_coarse},
        {"incomplete_runs", a->incomplete_runs}});
  }

  // --- per-backend replica throughput: serial vs 8-way fan-out ----------
  const auto& probe = requests.front();
  const auto planned = *narrow.plan_one(probe.plan_request());
  const auto schedule = sim::Schedule::from_plan(
      probe.config, planned.planned.full_plan, planned.planned.level_enabled);
  common::ThreadPool pool(8);
  const double serial_rps = replica_throughput(
      sim::coarse_backend(), probe.config, schedule, runs, nullptr);
  const double parallel_rps = replica_throughput(
      sim::coarse_backend(), probe.config, schedule, runs, &pool);
  const double speedup = serial_rps > 0.0 ? parallel_rps / serial_rps : 0.0;
  std::printf(
      "\n  coarse throughput: serial %8.1f runs/s   8 threads %8.1f "
      "runs/s   speedup %.2fx\n",
      serial_rps, parallel_rps, speedup);
  const double des_serial_rps = replica_throughput(
      sim::des_backend(), probe.config, schedule, des_runs, nullptr);
  const double des_parallel_rps = replica_throughput(
      sim::des_backend(), probe.config, schedule, des_runs, &pool);
  const double des_speedup =
      des_serial_rps > 0.0 ? des_parallel_rps / des_serial_rps : 0.0;
  std::printf(
      "  des    throughput: serial %8.1f runs/s   8 threads %8.1f "
      "runs/s   speedup %.2fx\n",
      des_serial_rps, des_parallel_rps, des_speedup);

  // Machine-readable mirror of every prose SKIP below: gates this run did
  // not measure, so tooling can tell "passed" from "not measured".
  net::json::Array skips;
  if (hw <= 1) skips.push_back(std::string("speedup_gate"));

  const net::json::Value summary = net::json::Object{
      {"v", kArtifactVersion},
      {"bench", "bench_sim"},
      {"runs", static_cast<long>(runs)},
      {"hardware_threads", static_cast<long>(hw)},
      {"deterministic", deterministic},
      {"worst_abs_wallclock_error", worst_error},
      {"worst_abs_des_wallclock_error", worst_des_error},
      {"serial_replicas_per_second", serial_rps},
      {"serial_baseline_replicas_per_second", kSerialBaselineRps},
      {"parallel_replicas_per_second", parallel_rps},
      {"speedup_8_threads", speedup},
      {"backends",
       net::json::Object{
           {"coarse",
            net::json::Object{{"runs", static_cast<long>(runs)},
                              {"serial_replicas_per_second", serial_rps},
                              {"parallel_replicas_per_second", parallel_rps},
                              {"speedup_8_threads", speedup}}},
           {"des",
            net::json::Object{
                {"runs", static_cast<long>(des_runs)},
                {"serial_replicas_per_second", des_serial_rps},
                {"parallel_replicas_per_second", des_parallel_rps},
                {"speedup_8_threads", des_speedup}}}}},
      {"cases", std::move(cases_json)},
      {"des_cases", std::move(des_cases_json)},
      {"skips", std::move(skips)}};
  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_sim: cannot write %s\n", out.c_str());
    return 1;
  }
  const std::string rendered = net::json::dump(summary);
  std::fwrite(rendered.data(), 1, rendered.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("\nwrote %s\n", out.c_str());

  const bool error_ok = worst_error < 0.05;
  const bool des_error_ok = worst_des_error < 0.05;
  std::printf(
      "  gates: determinism %s   worst coarse error %.2f%% (< 5%%) %s   "
      "worst des error %.2f%% (< 5%%) %s\n",
      deterministic ? "ok" : "FAIL", 100.0 * worst_error,
      error_ok ? "ok" : "FAIL", 100.0 * worst_des_error,
      des_error_ok ? "ok" : "FAIL");
  bool ok = deterministic && error_ok && des_error_ok;

  // Speedup is a hardware property: a hard gate where 8 real threads
  // exist, a visible SKIP (never a silent pass) where there is no parallel
  // hardware at all, informational in between.
  if (hw <= 1) {
    std::printf(
        "  SKIP: speedup gate (hardware_threads=%u; need >1 to measure the "
        "fan-out, >= 8 to enforce >= 4x)\n",
        hw);
  } else if (hw < 8) {
    std::printf(
        "  speedup %.2fx at %u hardware threads (informational; >= 4x "
        "enforced at >= 8)\n",
        speedup, hw);
  } else {
    const bool speedup_ok = speedup >= 4.0;
    std::printf("  speedup %.2fx (>= 4x at >= 8 hw threads): %s\n", speedup,
                speedup_ok ? "ok" : "FAIL");
    ok = ok && speedup_ok;
  }

  // The serial baseline is an absolute number from the reference host; on
  // arbitrary CI hardware a miss is reported but only --strict makes it a
  // gate (bench_net's precedent for absolute targets).
  const bool serial_ok = serial_rps >= 2.0 * kSerialBaselineRps;
  std::printf(
      "  serial %.0f runs/s (reference target >= %.0f = 2x %.0f baseline): "
      "%s\n",
      serial_rps, 2.0 * kSerialBaselineRps, kSerialBaselineRps,
      serial_ok ? "ok"
                : (strict ? "FAIL" : "below target (informational)"));
  if (strict) ok = ok && serial_ok;
  return ok ? 0 : 1;
}
