// Control-plane cost model (DESIGN.md §13), three measurements:
//
//   ingest    in-process Replanner fold throughput (events/s) on a
//             stationary high-rate stream — the budget a reactor shard
//             spends per observed failure before answering the batch
//   detect    detection latency in EVENTS: how many observed events after
//             an injected rate change (L1 doubled) until the replanner
//             schedules a re-solve, feeding hourly batches.  Counter-based
//             schedules make this number deterministic on every host.
//   push      wall-clock from the drifted ingest round trip to the revised
//             plan arriving on a subscribed connection of a real mlcrd
//             core (includes the Algorithm 1 re-solve) — skipped with a
//             visible SKIP line on single-hardware-thread runners
//
// Results go to stdout and BENCH_ctrl.json (artifact version "v": 1; an
// existing artifact with a NEWER "v" is never overwritten — downgrade
// protection for stacked checkouts).
//
// Acceptance (exit code): the detector must fire within 500 events of the
// injected change and never on the stationary stream.  The ingest
// throughput reference (>= 1e6 events/s on the reference host) is
// informational by default; --strict turns it into a hard gate for
// perf-tracking hosts.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ctrl/replanner.h"
#include "net/client.h"
#include "net/json.h"
#include "net/server.h"
#include "svc/system_config_builder.h"

namespace {

using namespace mlcr;

/// Artifact schema version written to BENCH_ctrl.json.
constexpr long kArtifactVersion = 1;

/// Reference-host ingest fold throughput; hard gate only under --strict.
constexpr double kIngestBaselineEventsPerSecond = 1e6;

constexpr double kDay = 86400.0;

/// Events at absolute multiples of `interval` falling in (start, end].
/// Absolute (not window-relative) phasing matters: the detect loop below
/// feeds hourly windows, and a level whose interval exceeds the window
/// would otherwise never fire — starving its posterior into a spurious
/// DOWNWARD drift instead of measuring the injected upward one.
std::vector<double> on_schedule(double start, double end, double interval) {
  std::vector<double> events;
  for (double t = (std::floor(start / interval) + 1.0) * interval; t <= end;
       t += interval) {
    events.push_back(t);
  }
  return events;
}

/// The paper's headline system (rates 16-12-8-4 per day at N_b = 1e6).
svc::PlanRequest paper_request() {
  return {exp::make_fti_system(3e6, exp::paper_failure_cases()[0]),
          opt::Solution::kMultilevelOptScale,
          {},
          "bench-ctrl"};
}

/// A synthetic high-rate system (1, 0.5, 0.25, 0.125 events/s) so ingest
/// batches carry enough events to time the fold, while staying exactly on
/// schedule (no drift, no alarms — pure estimator arithmetic).
svc::PlanRequest firehose_request() {
  svc::SystemConfigBuilder builder;
  builder.te_core_days(3e6)
      .quadratic_speedup(0.46, 1e6)
      .failure_rates_per_day({kDay, kDay / 2.0, kDay / 4.0, kDay / 8.0}, 1e6)
      .allocation_seconds(60.0);
  for (const double cost : {0.9, 2.5, 3.9, 5.5}) {
    builder.add_level(model::Overhead::constant(cost),
                      model::Overhead::constant(cost));
  }
  return {builder.build(), opt::Solution::kMultilevelOptScale, {},
          "bench-ctrl-firehose"};
}

/// One observation window of `request`'s stream with every level exactly on
/// its planned schedule, except level 1 at `l1_interval` seconds.
ctrl::IngestRequest batch(const svc::PlanRequest& base, double start,
                          double end, double l1_interval) {
  const auto& rates = base.config.rates();
  ctrl::IngestRequest request(base);
  request.trace.arrivals_per_level.push_back(
      on_schedule(start, end, l1_interval));
  for (std::size_t level = 1; level < base.config.levels(); ++level) {
    request.trace.arrivals_per_level.push_back(on_schedule(
        start, end, kDay / rates.per_day_at_baseline(level)));
  }
  request.observed_seconds = end;
  return request;
}

/// The "v" of an existing artifact at `path`: 0 when the file is absent,
/// unreadable, or pre-versioning (no "v" member).
long existing_artifact_version(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return 0;
  std::string text;
  char chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, got);
  }
  std::fclose(file);
  std::string error;
  const auto value = net::json::parse(text, &error);
  if (!value.has_value()) return 0;
  const net::json::Value* v = value->find("v");
  if (v == nullptr || !v->is_number()) return 0;
  return static_cast<long>(v->as_number());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t batches = 2000;
  std::string out = "BENCH_ctrl.json";
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--strict") {
      strict = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr,
                   "usage: bench_ctrl [--batches N] [--out FILE] "
                   "[--strict]\n");
      return 1;
    }
    const char* value = argv[++i];
    if (flag == "--batches") batches = std::atol(value);
    else if (flag == "--out") out = value;
    else {
      std::fprintf(stderr,
                   "usage: bench_ctrl [--batches N] [--out FILE] "
                   "[--strict]\n");
      return 1;
    }
  }

  // Downgrade protection: never clobber an artifact written by a newer
  // schema — a stacked checkout running an older binary must fail loudly.
  const long existing_v = existing_artifact_version(out);
  if (existing_v > kArtifactVersion) {
    std::fprintf(stderr,
                 "bench_ctrl: refusing to overwrite %s: its \"v\" is %ld, "
                 "newer than this binary's %ld\n",
                 out.c_str(), existing_v, kArtifactVersion);
    return 1;
  }

  const std::size_t hardware_threads = std::thread::hardware_concurrency();
  bench::print_header(common::strf(
      "online re-planning control plane — %zu ingest batches, %zu hardware "
      "threads",
      batches, hardware_threads));

  // --- ingest throughput -----------------------------------------------
  // 60-second windows of the firehose stream: 60+30+15+7 = 112 on-schedule
  // events per batch, posterior pinned to the baseline throughout.
  const svc::PlanRequest firehose = firehose_request();
  ctrl::Replanner folder;
  std::size_t ingest_events = 0;
  bool ingest_stationary = true;
  const auto ingest_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < batches; ++i) {
    const double start = 60.0 * static_cast<double>(i);
    const auto outcome =
        folder.ingest(batch(firehose, start, start + 60.0, 1.0));
    ingest_events += outcome.report.batch_events;
    ingest_stationary = ingest_stationary && !outcome.report.drift_detected;
  }
  const double ingest_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ingest_start)
          .count();
  const double events_per_second =
      static_cast<double>(ingest_events) / ingest_seconds;
  std::printf(
      "  ingest %9zu events in %7.3f s -> %12.0f events/s  "
      "(stationary stream, drift fired: %s)\n",
      ingest_events, ingest_seconds, events_per_second,
      ingest_stationary ? "never" : "SPURIOUSLY");

  // --- detection latency in events -------------------------------------
  // One stationary day on the paper stream, then hourly batches with the
  // L1 rate doubled (one event per 2700 s): count events from the change
  // until the replanner schedules the re-solve.
  const svc::PlanRequest paper = paper_request();
  ctrl::Replanner detector;
  (void)detector.ingest(batch(paper, 0.0, kDay, kDay / 16.0));
  long detect_events = 0;
  bool detected = false;
  for (std::size_t hour = 0; hour < 24 * 30 && !detected; ++hour) {
    const double start = kDay + 3600.0 * static_cast<double>(hour);
    const auto outcome =
        detector.ingest(batch(paper, start, start + 3600.0, 2700.0));
    detect_events += static_cast<long>(outcome.report.batch_events);
    detected = outcome.revised.has_value();
  }
  std::printf(
      "  detect %9ld events from L1 rate doubling to scheduled re-plan "
      "(hourly batches)%s\n",
      detect_events, detected ? "" : "  NEVER DETECTED");

  // --- end-to-end push latency ------------------------------------------
  // Full loop against a real server core: drifted ingest -> queue ->
  // Algorithm 1 re-solve -> commit -> push to the subscribed connection.
  double push_ms = 0.0;
  bool push_ok = true;
  const bool push_measured = hardware_threads > 1;
  if (!push_measured) {
    std::printf(
        "  SKIP: end-to-end push latency (hardware_threads=%zu; the "
        "server's reactor + solver threads need real parallelism)\n",
        hardware_threads);
  } else {
    net::ServerOptions options;
    options.port = 0;
    options.shards = 2;
    options.solver_threads = 2;
    net::Server server(options);
    server.start();
    net::Client subscriber({.port = server.port()});
    push_ok = subscriber.subscribe(paper).accepted;
    net::Client ingester({.port = server.port()});
    push_ok =
        push_ok &&
        ingester.ingest(batch(paper, 0.0, kDay, kDay / 16.0)).accepted;
    const auto push_start = std::chrono::steady_clock::now();
    const auto drifted =
        ingester.ingest(batch(paper, kDay, 4.0 * kDay, 2700.0));
    push_ok = push_ok && drifted.accepted && drifted.report.replanned;
    const auto event = subscriber.poll_event(60000);
    push_ms = 1e3 * std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - push_start)
                        .count();
    push_ok = push_ok && event.has_value() &&
              event->kind == net::PushEvent::Kind::kPlan &&
              event->plan_epoch == 1;
    std::printf(
        "  push   %9.3f ms from drifted ingest to pushed revision "
        "(includes the re-solve)%s\n",
        push_ms, push_ok ? "" : "  PUSH LOOP FAILED");
  }

  // Machine-readable mirror of every prose SKIP above, so tooling can tell
  // "passed" from "not measured" without parsing stdout.
  net::json::Array skips;
  if (!push_measured) skips.push_back(std::string("push_latency"));

  const net::json::Value summary = net::json::Object{
      {"bench", "bench_ctrl"},
      {"v", kArtifactVersion},
      {"skips", std::move(skips)},
      {"batches", static_cast<long>(batches)},
      {"hardware_threads", static_cast<long>(hardware_threads)},
      {"ingest",
       net::json::Object{{"events", static_cast<long>(ingest_events)},
                         {"seconds", ingest_seconds},
                         {"events_per_second", events_per_second},
                         {"stationary", ingest_stationary}}},
      {"detect", net::json::Object{{"detected", detected},
                                   {"events_to_replan", detect_events}}},
      {"push", net::json::Object{{"measured", push_measured},
                                 {"ok", push_ok},
                                 {"milliseconds", push_ms}}}};
  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_ctrl: cannot write %s\n", out.c_str());
    return 1;
  }
  const std::string rendered = net::json::dump(summary);
  std::fwrite(rendered.data(), 1, rendered.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("\nwrote %s\n", out.c_str());

  // Universal gates: the detector is deterministic — it must fire, fast,
  // and never on the stationary stream; the push loop (when measured) must
  // deliver epoch 1.
  bool ok = ingest_stationary && detected && detect_events <= 500 && push_ok;
  std::printf("  detection <= 500 events: %s   stationary false-alarms: %s\n",
              detected && detect_events <= 500 ? "ok" : "FAIL",
              ingest_stationary ? "none" : "FAIL");
  if (strict) {
    const bool ingest_ok = events_per_second >= kIngestBaselineEventsPerSecond;
    std::printf("  ingest %.0f events/s (strict target >= %.0f): %s\n",
                events_per_second, kIngestBaselineEventsPerSecond,
                ingest_ok ? "ok" : "FAIL");
    ok = ok && ingest_ok;
  }
  return ok ? 0 : 1;
}
