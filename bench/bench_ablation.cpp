// Ablation studies of the design choices called out in DESIGN.md:
//  A. checkpoint-write atomicity: paper-faithful deferred-failure semantics
//     vs strict interruptible writes (livelock once C exceeds the MTBF);
//  B. Young-formula initialization of the inner fixed point vs naive
//     all-ones initialization (iteration counts);
//  C. value of each level: optimize with levels progressively removed;
//  D. sensitivity to the failure-rate scale exponent p in lambda ~ N^p.
#include "bench_util.h"

#include <cmath>

#include "opt/multilevel.h"
#include "opt/young.h"

namespace {

using namespace mlcr;

void ablation_atomicity() {
  bench::print_header("Ablation A — checkpoint-write atomicity");
  common::Table table({"solution", "semantics", "completed runs",
                       "mean WCT (d)"});
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"16-12-8-4", {16, 12, 8, 4}});
  for (const auto solution : {opt::Solution::kMultilevelOptScale,
                              opt::Solution::kSingleLevelOriScale}) {
    const auto planned = opt::plan(solution, cfg);
    const auto schedule = sim::Schedule::from_plan(
        cfg, planned.full_plan, planned.level_enabled);
    for (const bool atomic : {true, false}) {
      sim::MonteCarloOptions options;
      options.runs = 20;
      options.sim.atomic_checkpoints = atomic;
      options.sim.max_events = 5'000'000;  // strict mode may livelock
      const auto r = sim::monte_carlo(cfg, schedule, options);
      table.add_row(
          {opt::to_string(solution), atomic ? "atomic (paper)" : "strict",
           common::strf("%d/20", 20 - static_cast<int>(r.incomplete_runs)),
           r.wallclock.count() > 0
               ? common::strf("%.1f",
                              common::seconds_to_days(r.wallclock.mean()))
               : "n/a (livelock)"});
    }
  }
  table.print();
  std::printf(
      "  Finding: with strict semantics the single-level plan at 1m cores\n"
      "  cannot complete a 21,000s PFS write against a ~2,000s MTBF; the\n"
      "  paper's model implicitly assumes durable writes.\n");
}

void ablation_initialization() {
  bench::print_header("Ablation B — inner fixed-point initialization");
  common::Table table({"case", "inner iters (Young seed)",
                       "Young seed gap vs optimum"});
  for (const auto& failure_case : exp::paper_failure_cases()) {
    const auto cfg = exp::make_fti_system(3e6, failure_case);
    const double wallclock_guess = cfg.productive_time(1e6);
    const auto mu = model::MuModel::from_rates(cfg.rates(), wallclock_guess);
    const auto young = opt::solve_multilevel(cfg, mu);

    // Naive run: start every x_i at 1 by bypassing the Young seed — emulate
    // by running the sweep from a plan of ones through the public API with
    // a tiny max_iterations probe loop.
    opt::MultilevelOptions naive_options;
    naive_options.max_iterations = 2000;
    // The solver always seeds with Young internally; measure instead how
    // far the Young seed already is from the fixed point by comparing the
    // seed plan's objective to the converged one.
    model::Plan seed;
    seed.scale = cfg.scale_upper_bound();
    seed.intervals = opt::young_interval_counts(cfg, mu, seed.scale);
    const double seed_value = model::expected_wallclock(cfg, mu, seed);
    table.add_row({failure_case.name, common::strf("%d", young.iterations),
                   common::strf("seed gap %.1f%%",
                                100.0 * (seed_value / young.wallclock - 1.0))});
  }
  table.print();
  std::printf(
      "  Young's formula (25) seeds the fixed point within a few percent of\n"
      "  the optimum, which is why the paper's inner loop converges fast.\n");
}

void ablation_levels() {
  bench::print_header("Ablation C — value of each checkpoint level");
  const exp::FailureCase failure_case{"16-12-8-4", {16, 12, 8, 4}};
  common::Table table({"levels enabled", "mean WCT (d)", "vs all levels"});
  const auto cfg = exp::make_fti_system(3e6, failure_case);
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);

  double baseline = 0.0;
  const std::vector<std::pair<std::string, std::vector<bool>>> variants{
      {"1+2+3+4 (all)", {true, true, true, true}},
      {"1+4", {true, false, false, true}},
      {"2+4", {false, true, false, true}},
      {"3+4", {false, false, true, true}},
      {"4 only", {false, false, false, true}}};
  for (const auto& [name, enabled] : variants) {
    const auto schedule =
        sim::Schedule::from_plan(cfg, planned.full_plan, enabled);
    sim::MonteCarloOptions options;
    options.runs = 40;
    const auto r = sim::monte_carlo(cfg, schedule, options);
    const double wct = r.wallclock.mean();
    if (baseline == 0.0) baseline = wct;
    table.add_row({name,
                   common::strf("%.1f", common::seconds_to_days(wct)),
                   common::strf("%+.1f%%", 100.0 * (wct / baseline - 1.0))});
  }
  table.print();
  std::printf(
      "  Dropping cheap lower levels forces every small failure to recover\n"
      "  from expensive higher-level checkpoints.\n");
}

void ablation_scale_exponent() {
  bench::print_header(
      "Ablation D — failure-rate scale exponent lambda ~ N^p");
  common::Table table({"p", "optimized N", "predicted WCT (d)"});
  for (const double p : {0.5, 1.0, 1.5, 2.0}) {
    std::vector<model::LevelOverheads> levels = exp::fti_level_overheads();
    model::FailureRates rates({16, 12, 8, 4}, 1e6, p);
    model::SystemConfig cfg(common::core_days_to_seconds(3e6),
                            std::make_unique<model::QuadraticSpeedup>(0.46,
                                                                      1e6),
                            std::move(levels), std::move(rates), 60.0);
    const auto r = opt::optimize_multilevel(cfg);
    table.add_row({common::strf("%.1f", p),
                   common::format_count(r.plan.scale),
                   common::strf("%.1f",
                                common::seconds_to_days(r.wallclock))});
  }
  table.print();
  std::printf(
      "  Rates are anchored at the 1m-core baseline, so a steeper exponent\n"
      "  means FEWER failures at the sub-baseline scales the optimizer\n"
      "  picks — it can afford more cores (and shorter runs).  Anchored at\n"
      "  a small baseline the effect reverses.\n");
}

void ablation_weibull() {
  bench::print_header(
      "Ablation E — failure inter-arrival distribution (exponential vs "
      "Weibull, mean-preserving)");
  common::Table table({"shape", "interpretation", "mean WCT (d)",
                       "WCT stddev (d)"});
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"8-6-4-2", {8, 6, 4, 2}});
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule = sim::Schedule::from_plan(
      cfg, planned.full_plan, planned.level_enabled);
  for (const auto& [shape, label] :
       {std::pair{0.7, "infant mortality"}, std::pair{1.0, "exponential"},
        std::pair{1.5, "wear-out"}, std::pair{3.0, "strong wear-out"}}) {
    sim::MonteCarloOptions options;
    options.runs = 60;
    options.sim.weibull_shape = shape;
    const auto r = sim::monte_carlo(cfg, schedule, options);
    table.add_row({common::strf("%.1f", shape), label,
                   common::strf("%.1f",
                                common::seconds_to_days(r.wallclock.mean())),
                   common::strf("%.2f",
                                common::seconds_to_days(r.wallclock.stddev()))});
  }
  table.print();
  std::printf(
      "  The paper assumes exponential arrivals; mean wall-clock is nearly\n"
      "  shape-invariant (mean rate preserved) while run-to-run variance\n"
      "  drops for wear-out shapes.\n");
}

void ablation_young_vs_daly() {
  bench::print_header(
      "Ablation F — Young vs Daly interval on the single-level baseline");
  common::Table table({"case", "Young WCT (d)", "Daly WCT (d)", "difference"});
  for (const auto& failure_case : exp::paper_failure_cases()) {
    const auto cfg = exp::make_fti_system(3e6, failure_case);
    const auto single = cfg.single_level_view();
    const double n = 1e6;
    const double productive = single.productive_time(n);
    const double merged_rate = single.rates().rate_per_second(0, n);
    const double mtbf = 1.0 / merged_rate;
    const double c = single.ckpt_cost(0, n);

    auto simulate_with_interval = [&](double tau) {
      model::Plan plan{{std::max(2.0, std::round(productive / tau))}, n};
      const auto schedule =
          sim::Schedule::from_plan(single, plan, {true});
      sim::MonteCarloOptions options;
      options.runs = 40;
      return sim::monte_carlo(single, schedule, options).wallclock.mean();
    };
    const double young = simulate_with_interval(opt::young_interval(c, mtbf));
    const double daly = simulate_with_interval(opt::daly_interval(c, mtbf));
    table.add_row({failure_case.name,
                   common::strf("%.1f", common::seconds_to_days(young)),
                   common::strf("%.1f", common::seconds_to_days(daly)),
                   common::strf("%+.1f%%", 100.0 * (daly / young - 1.0))});
  }
  table.print();
  std::printf(
      "  At 1m cores the PFS checkpoint (21,000s) rivals the MTBF, a regime\n"
      "  where Young's first-order formula is badly off and Daly's bounded\n"
      "  variant helps a lot (up to ~45%%).  Both remain ~4-8x worse than\n"
      "  the multilevel scale-optimized plan (~35d for 16-12-8-4, Fig. 5):\n"
      "  the paper's scale choice dominates the interval refinement.\n");
}

}  // namespace

int main() {
  ablation_atomicity();
  ablation_initialization();
  ablation_levels();
  ablation_scale_exponent();
  ablation_weibull();
  ablation_young_vs_daly();
  return 0;
}
