// Figure 1: the speedup-vs-overhead tradeoff that motivates the paper —
// performance curves with and without the checkpoint model, showing that the
// optimal number of cores with checkpointing sits below the original optimal
// scale.
#include "bench_util.h"

#include "opt/multilevel.h"

int main() {
  using namespace mlcr;
  bench::print_header(
      "Figure 1 — tradeoff between speedup and checkpoint/failure overheads");

  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"16-12-8-4", {16, 12, 8, 4}});

  // Self-consistent mu at each N: run the full optimizer once to get a
  // representative wall-clock scale for mu initialization.
  const auto reference = opt::optimize_multilevel(cfg);

  common::Table table({"N (cores)", "no-checkpoint days",
                       "with-checkpoint days", "overhead share"});
  for (double n = 1e5; n <= 1e6 + 1.0; n += 1e5) {
    const double bare = common::seconds_to_days(cfg.productive_time(n));
    // Optimize intervals at this fixed N under self-consistent failures.
    opt::Algorithm1Options options;
    options.optimize_scale = false;
    options.fixed_scale = n;
    const auto at_n = opt::optimize_multilevel(cfg, options);
    const double with = common::seconds_to_days(at_n.wallclock);
    table.add_row({common::format_count(n), common::strf("%.2f", bare),
                   common::strf("%.2f", with),
                   common::strf("%.1f%%", 100.0 * (1.0 - bare / with))});
  }
  table.print();
  std::printf(
      "\n  Optimal scale without checkpoints: 1m (speedup peak).\n"
      "  Optimal scale with the checkpoint model: %s — the curve's minimum\n"
      "  moved left, exactly the Figure 1 phenomenon.\n",
      common::format_count(reference.plan.scale).c_str());
  return 0;
}
