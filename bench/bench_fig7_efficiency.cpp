// Figure 7: efficiency (wall-clock-based speedup divided by the number of
// cores used) for the Te = 3m and Te = 10m workloads, all six failure cases
// and all four solutions.  Paper: SL(opt-scale) reaches the highest
// efficiency (tiny scales) but with unacceptable wall-clock; ML(opt-scale)
// keeps both wall-clock and efficiency strong.
#include "bench_util.h"

int main() {
  using namespace mlcr;
  svc::SweepEngine engine;
  for (const double te : {3e6, 1e7}) {
    bench::print_header(common::strf(
        "Figure 7 — efficiency (Te=%.0fm core-days, N_star=1m cores)",
        te / 1e6));
    common::Table table({"case", "ML(opt-scale)", "SL(opt-scale)",
                         "ML(ori-scale)", "SL(ori-scale)"});
    for (const auto& failure_case : exp::paper_failure_cases()) {
      const auto cfg = exp::make_fti_system(te, failure_case);
      std::vector<std::string> row{failure_case.name};
      double ml_opt_eff = 0.0, sl_opt_eff = 0.0;
      for (const auto solution : opt::all_solutions()) {
        const auto eval = bench::evaluate(engine, cfg, solution, /*runs=*/50);
        const double eff = eval.simulated.efficiency.mean();
        row.push_back(common::strf("%.3f", eff));
        if (solution == opt::Solution::kMultilevelOptScale) ml_opt_eff = eff;
        if (solution == opt::Solution::kSingleLevelOptScale) sl_opt_eff = eff;
      }
      table.add_row(std::move(row));
      (void)ml_opt_eff;
      (void)sl_opt_eff;
    }
    table.print();
  }
  std::printf(
      "\n  Expected shape: SL(opt-scale) highest (few cores), ML(opt-scale)\n"
      "  clearly above ML(ori-scale) and SL(ori-scale).\n");
  return 0;
}
