// Google-benchmark micro-benchmarks of the library itself: planner latency,
// simulator event throughput, and the numeric kernels.  These quantify the
// paper's "our algorithm works very efficiently" claim in wall-clock terms.
#include <benchmark/benchmark.h>

#include "apps/heat.h"
#include "common/rng.h"
#include "exp/cases.h"
#include "num/least_squares.h"
#include "opt/level_selection.h"
#include "opt/planner.h"
#include "opt/single_level.h"
#include "rs/reed_solomon.h"
#include "sim/event_sim.h"

namespace {

using namespace mlcr;

void BM_Algorithm1_MultilevelOptScale(benchmark::State& state) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"16-12-8-4", {16, 12, 8, 4}});
  for (auto _ : state) {
    auto r = opt::optimize_multilevel(cfg);
    benchmark::DoNotOptimize(r.wallclock);
  }
}
BENCHMARK(BM_Algorithm1_MultilevelOptScale);

void BM_Algorithm1_SingleLevelOptScale(benchmark::State& state) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"16-12-8-4", {16, 12, 8, 4}})
          .single_level_view();
  for (auto _ : state) {
    auto r = opt::optimize_single_level(cfg);
    benchmark::DoNotOptimize(r.wallclock);
  }
}
BENCHMARK(BM_Algorithm1_SingleLevelOptScale);

void BM_Fig3FixedPoint(benchmark::State& state) {
  const auto cfg = exp::make_fig3_system(false);
  const auto mu = exp::fig3_mu();
  for (auto _ : state) {
    auto s = opt::solve_single_level(cfg, mu);
    benchmark::DoNotOptimize(s.n);
  }
}
BENCHMARK(BM_Fig3FixedPoint);

void BM_SimulateOneRun(benchmark::State& state) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"16-12-8-4", {16, 12, 8, 4}});
  const auto planned = opt::plan(opt::Solution::kMultilevelOptScale, cfg);
  const auto schedule = sim::Schedule::from_plan(
      cfg, planned.full_plan, planned.level_enabled);
  std::uint64_t seed = 0;
  long events = 0;
  for (auto _ : state) {
    common::Rng rng(seed++);
    auto r = sim::simulate(cfg, schedule, rng);
    events += r.checkpoints_per_level[0];
    benchmark::DoNotOptimize(r.wallclock);
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_SimulateOneRun);

void BM_ExpectedWallclockEvaluation(benchmark::State& state) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"16-12-8-4", {16, 12, 8, 4}});
  const auto mu = model::MuModel::from_rates(cfg.rates(), 3e6);
  const model::Plan plan{{9000, 4500, 3000, 50}, 5e5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::expected_wallclock(cfg, mu, plan));
  }
}
BENCHMARK(BM_ExpectedWallclockEvaluation);

void BM_LeastSquaresQuadraticFit(benchmark::State& state) {
  std::vector<double> n, g;
  for (double v = 16; v <= 1024; v += 16) {
    n.push_back(v);
    g.push_back(-0.46 / 2e5 * v * v + 0.46 * v);
  }
  for (auto _ : state) {
    auto fit = num::fit_quadratic_through_origin(n, g);
    benchmark::DoNotOptimize(fit.coefficients);
  }
}
BENCHMARK(BM_LeastSquaresQuadraticFit);

void BM_LevelSelectionExhaustive(benchmark::State& state) {
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"16-12-8-4", {16, 12, 8, 4}});
  for (auto _ : state) {
    auto r = opt::optimize_with_level_selection(cfg);
    benchmark::DoNotOptimize(r.optimization.wallclock);
  }
}
BENCHMARK(BM_LevelSelectionExhaustive);

void BM_ReedSolomonEncode(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int m = 2;
  const std::size_t shard_size = 64 * 1024;
  rs::ReedSolomon code(k, m);
  common::Rng rng(1);
  std::vector<std::vector<std::uint8_t>> shards(
      static_cast<std::size_t>(k + m));
  for (int i = 0; i < k + m; ++i) {
    shards[static_cast<std::size_t>(i)].resize(shard_size);
    if (i < k) {
      for (auto& b : shards[static_cast<std::size_t>(i)]) {
        b = static_cast<std::uint8_t>(rng.next());
      }
    }
  }
  for (auto _ : state) {
    code.encode(shards);
    benchmark::DoNotOptimize(shards.back().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k) *
                          static_cast<std::int64_t>(shard_size));
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(4)->Arg(8)->Arg(16);

void BM_ReedSolomonReconstructTwoLosses(benchmark::State& state) {
  const int k = 8, m = 2;
  const std::size_t shard_size = 64 * 1024;
  rs::ReedSolomon code(k, m);
  common::Rng rng(2);
  std::vector<std::vector<std::uint8_t>> pristine(
      static_cast<std::size_t>(k + m));
  for (int i = 0; i < k + m; ++i) {
    pristine[static_cast<std::size_t>(i)].resize(shard_size);
    if (i < k) {
      for (auto& b : pristine[static_cast<std::size_t>(i)]) {
        b = static_cast<std::uint8_t>(rng.next());
      }
    }
  }
  code.encode(pristine);
  for (auto _ : state) {
    auto shards = pristine;
    std::vector<bool> present(static_cast<std::size_t>(k + m), true);
    present[1] = present[5] = false;
    shards[1].clear();
    shards[5].clear();
    const bool ok = code.reconstruct(shards, present);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(shard_size));
}
BENCHMARK(BM_ReedSolomonReconstructTwoLosses);

void BM_HeatSolverIteration(benchmark::State& state) {
  apps::HeatConfig config;
  config.rows = 258;
  config.cols = 256;
  config.iterations = 5;
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = apps::run_heat(config, ranks);
    benchmark::DoNotOptimize(result.residual);
  }
  state.SetItemsProcessed(state.iterations() * config.iterations * ranks);
}
BENCHMARK(BM_HeatSolverIteration)->Arg(4)->Arg(16)->Arg(64);

void BM_FtiCheckpointCharacterization(benchmark::State& state) {
  for (auto _ : state) {
    auto costs = exp::measure_fti_costs(128);
    benchmark::DoNotOptimize(costs[3]);
  }
}
BENCHMARK(BM_FtiCheckpointCharacterization);

}  // namespace

BENCHMARK_MAIN();
