// Shared helpers for the paper-reproduction bench binaries.  Each binary
// regenerates one table or figure of the paper (see DESIGN.md).  Planning
// goes through the svc::SweepEngine PlanRequest/PlanReport API so every
// bench shares the engine's plan cache and status reporting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "exp/cases.h"
#include "sim/monte_carlo.h"
#include "svc/sweep_engine.h"

namespace mlcr::bench {

/// One (solution, failure-case) evaluation: plan analytically through the
/// sweep engine, then run the Monte-Carlo simulation of the planned schedule.
struct CaseEvaluation {
  svc::PlanReport report;
  sim::MonteCarloResult simulated;
};

inline CaseEvaluation evaluate(svc::SweepEngine& engine,
                               const model::SystemConfig& cfg,
                               opt::Solution solution, int runs = 100,
                               std::uint64_t seed = 0x5eed) {
  CaseEvaluation eval;
  eval.report = *engine.plan_one(svc::PlanRequest{cfg, solution, {}, {}});
  const auto schedule = sim::Schedule::from_plan(
      cfg, eval.report.planned.full_plan, eval.report.planned.level_enabled);
  sim::MonteCarloOptions options;
  options.runs = runs;
  options.seed = seed;
  eval.simulated = sim::monte_carlo(cfg, schedule, options);
  return eval;
}

inline void print_header(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
}

/// Prints "paper vs measured" single-line comparisons for EXPERIMENTS.md.
inline void print_comparison(const std::string& what, double paper,
                             double measured) {
  std::printf("  %-46s paper=%-12.4g measured=%-12.4g ratio=%.3f\n",
              what.c_str(), paper, measured,
              paper != 0.0 ? measured / paper : 0.0);
}

}  // namespace mlcr::bench
