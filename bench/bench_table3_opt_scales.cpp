// Table III: optimized execution scales of ML(opt-scale) and SL(opt-scale)
// for the six failure cases (Te = 3m core-days, N_star = 1m cores).
//
// Paper row values (thousands of cores):
//   ML(opt-scale): 472k 564k 658k 563k 657k 734k
//   SL(opt-scale):  41k 78.6k 36.7k 53.6k 325k 399k
#include "bench_util.h"

int main() {
  using namespace mlcr;
  bench::print_header(
      "Table III — optimized scales (Te=3m core-days, N_star=1m cores)");

  const double paper_ml[6] = {472e3, 564e3, 658e3, 563e3, 657e3, 734e3};
  const double paper_sl[6] = {41e3, 78.6e3, 36.7e3, 53.6e3, 325e3, 399e3};

  // Both solutions for all six cases planned as one parallel sweep.
  svc::SweepEngine engine;
  const auto cases = exp::paper_failure_cases();
  std::vector<svc::PlanRequest> requests;
  for (const auto& failure_case : cases) {
    const auto cfg = exp::make_fti_system(3e6, failure_case);
    requests.push_back(
        {cfg, opt::Solution::kMultilevelOptScale, {}, failure_case.name});
    requests.push_back(
        {cfg, opt::Solution::kSingleLevelOptScale, {}, failure_case.name});
  }
  const auto reports = engine.plan_sweep(requests);

  common::Table table(
      {"case", "ML(opt-scale) paper", "ML(opt-scale) ours",
       "SL(opt-scale) paper", "SL(opt-scale) ours"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& ml = reports[2 * i];
    const auto& sl = reports[2 * i + 1];
    table.add_row({cases[i].name, common::format_count(paper_ml[i]),
                   common::format_count(ml.plan().scale),
                   common::format_count(paper_sl[i]),
                   common::format_count(sl.plan().scale)});
  }
  table.print();
  std::printf(
      "\n  Paper claim: the optimized scale uses 40-79%% of the 1m cores in\n"
      "  the ML model, and failure-heavier cases use fewer cores.\n");
  return 0;
}
