// Figure 4: validation of the coarse (event-driven) simulator against the
// detailed rank-level execution — the paper validated its simulator against
// real FTI + MPI runs on Fusion and reported < 4% difference.
//
// Here both sides are fully under our control: the detailed side runs the
// real Heat Distribution solver on the virtual cluster with the FTI-like
// library and Poisson node-failure injection; the coarse side runs the
// event simulator configured with the costs MEASURED on that same cluster.
// Agreement between two independently-implemented substrates is the
// repo-level analogue of the paper's simulator validation.
#include "bench_util.h"

#include <cmath>

#include "apps/heat_ckpt.h"
#include "common/rng.h"

namespace {

using namespace mlcr;

struct IntervalSetting {
  std::array<int, 4> iterations;  // checkpoint period per level, iterations
};

/// Generates Poisson failure arrivals over [0, horizon) for the detailed
/// run: level 1 = software fault, level 2 = one node crash, level 3 = a
/// partner pair crash (forces Reed-Solomon or PFS recovery).
std::vector<apps::InjectedFailure> draw_failures(
    common::Rng& rng, const double rates_per_second[3], double horizon,
    int nodes) {
  std::vector<apps::InjectedFailure> failures;
  for (int level = 0; level < 3; ++level) {
    double t = 0.0;
    for (;;) {
      if (rates_per_second[level] <= 0.0) break;
      t += rng.exponential(rates_per_second[level]);
      if (t >= horizon) break;
      const int node = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(nodes)));
      failures.push_back({t, node, level + 1});
      if (level == 2) {  // adjacent pair: breaks the partner chain
        failures.push_back({t, (node + 1) % nodes, 2});
      }
    }
  }
  std::sort(failures.begin(), failures.end(),
            [](const auto& a, const auto& b) { return a.at < b.at; });
  return failures;
}

}  // namespace

int main() {
  using namespace mlcr;
  bench::print_header(
      "Figure 4 — coarse simulator vs detailed FTI+heat execution");

  constexpr int kRanks = 128;
  constexpr int kSeeds = 12;
  // Heavy per-iteration compute so checkpoints are a sane fraction of the
  // run (a 4,000-core-day workload scaled to a short horizon).
  apps::HeatCkptConfig base;
  base.heat.rows = 130;
  base.heat.cols = 128;
  base.heat.iterations = 40;
  base.heat.flops_per_cell = 2.3e6;  // ~30 s/iteration at 128 ranks
  base.cluster = exp::fusion_cluster(kRanks);
  base.fti = exp::fusion_fti();
  base.allocation = 20.0;
  base.logical_checkpoint_bytes = exp::fusion_payload_bytes();

  // Failure rates (events/second) for levels 1..3.
  const double rates[3] = {1.2e-3, 6e-4, 3e-4};

  // Failure-free, checkpoint-free parallel duration — the coarse model's
  // productive time.
  apps::HeatConfig plain = base.heat;
  const double productive = apps::run_heat(plain, kRanks).wallclock;
  const double per_iteration = productive / base.heat.iterations;

  // Costs measured on the same virtual cluster feed the coarse model.
  const auto measured = exp::measure_fti_costs(kRanks);

  // Interval settings whose counts divide the 40 iterations and whose
  // grids nest (higher levels land on lower-level grid points), so the
  // coarse schedule's supersession matches the detailed driver's level
  // promotion exactly — the residual difference then measures genuine
  // modelling error, not grid misalignment.
  const IntervalSetting settings[] = {
      {{2, 4, 8, 20}}, {{4, 8, 20, 40}}, {{5, 10, 20, 0}}, {{2, 10, 20, 40}}};

  common::Table table({"intervals (iters)", "detailed mean (s)",
                       "coarse mean (s)", "difference"});
  double worst = 0.0;
  for (const auto& setting : settings) {
    // --- detailed side ---
    stat::Summary detailed;
    for (int seed = 0; seed < kSeeds; ++seed) {
      apps::HeatCkptConfig config = base;
      config.interval_iterations = setting.iterations;
      common::Rng rng(2024, static_cast<std::uint64_t>(seed));
      config.failures =
          draw_failures(rng, rates, productive * 3.0, config.cluster.nodes);
      const auto run = apps::run_heat_checkpointed(config);
      if (run.completed) detailed.add(run.wallclock);
    }

    // --- coarse side: same costs, same failure rates, same schedule ---
    std::vector<model::LevelOverheads> levels(4);
    for (int level = 0; level < 4; ++level) {
      levels[static_cast<std::size_t>(level)].checkpoint =
          model::Overhead::constant(measured[static_cast<std::size_t>(level)]);
      // Recovery ~ read-back of one checkpoint: local read for L1-3, PFS
      // read for L4 — approximated by the level's write cost without the
      // PFS queueing (constant part only).
      levels[static_cast<std::size_t>(level)].recovery =
          model::Overhead::constant(
              level < 3 ? measured[static_cast<std::size_t>(level)] : 8.0);
    }
    // Level 1-3 rates from the injection; the injected "level 3" kills a
    // partner pair, which the detailed run usually recovers at level 3.
    const double day = 86400.0;
    model::FailureRates fr({rates[0] * day, rates[1] * day, rates[2] * day,
                            1e-9},
                           /*baseline=*/1.0);
    model::SystemConfig coarse_cfg(
        productive, std::make_unique<model::LinearSpeedup>(1.0),
        std::move(levels), std::move(fr), base.allocation);

    model::Plan plan;
    plan.scale = 1.0;
    plan.intervals.resize(4, 1.0);
    std::vector<bool> enabled(4, false);
    for (int level = 0; level < 4; ++level) {
      const int iters = setting.iterations[static_cast<std::size_t>(level)];
      if (iters > 0 && iters < base.heat.iterations) {
        enabled[static_cast<std::size_t>(level)] = true;
        plan.intervals[static_cast<std::size_t>(level)] =
            std::round(productive / (iters * per_iteration));
      }
    }
    const auto schedule = sim::Schedule::from_plan(coarse_cfg, plan, enabled);
    sim::MonteCarloOptions mc;
    mc.runs = 200;
    const auto coarse = sim::monte_carlo(coarse_cfg, schedule, mc);

    const double difference =
        100.0 * (coarse.wallclock.mean() / detailed.mean() - 1.0);
    worst = std::max(worst, std::fabs(difference));
    table.add_row({common::strf("%d-%d-%d-%d", setting.iterations[0],
                                setting.iterations[1], setting.iterations[2],
                                setting.iterations[3]),
                   common::strf("%.0f", detailed.mean()),
                   common::strf("%.0f", coarse.wallclock.mean()),
                   common::strf("%+.1f%%", difference)});
  }
  table.print();
  std::printf(
      "\n  worst-case difference: %.1f%% (paper reports < 4%% between its\n"
      "  simulator and real Fusion runs)\n",
      worst);
  return 0;
}
