// Level-selection study (extension of the paper; its earlier work [22]
// optimizes the selection of checkpoint levels).  For each failure case,
// evaluates every admissible subset of the four FTI levels with Algorithm 1
// and reports the winner — revealing the redo-term effect: very frequent
// cheap checkpoints tax every higher-level rollback.
#include "bench_util.h"

#include "opt/level_selection.h"

int main() {
  using namespace mlcr;
  bench::print_header(
      "Level selection — best subset per failure case (Te=3m core-days)");

  common::Table table({"case", "best subset", "WCT best (d)",
                       "WCT all levels (d)", "gain", "N used"});
  for (const auto& failure_case : exp::paper_failure_cases()) {
    const auto cfg = exp::make_fti_system(3e6, failure_case);
    const auto r = opt::optimize_with_level_selection(cfg);
    std::string subset;
    for (std::size_t level = 0; level < r.enabled.size(); ++level) {
      if (r.enabled[level]) {
        if (!subset.empty()) subset += "+";
        subset += std::to_string(level + 1);
      }
    }
    const double all_levels = r.subset_wallclocks.back();
    table.add_row(
        {failure_case.name, subset,
         common::strf("%.1f",
                      common::seconds_to_days(r.optimization.wallclock)),
         common::strf("%.1f", common::seconds_to_days(all_levels)),
         common::strf("%.1f%%",
                      100.0 * (1.0 - r.optimization.wallclock / all_levels)),
         common::format_count(r.full_plan.scale)});
  }
  table.print();

  bench::print_header("Subset landscape for 16-12-8-4 (lower is better)");
  const auto cfg =
      exp::make_fti_system(3e6, exp::FailureCase{"16-12-8-4", {16, 12, 8, 4}});
  const auto r = opt::optimize_with_level_selection(cfg);
  common::Table landscape({"levels enabled", "E(Tw) days"});
  for (unsigned mask = 0; mask < r.subset_wallclocks.size(); ++mask) {
    std::string subset;
    for (unsigned level = 0; level < 3; ++level) {
      if ((mask >> level) & 1u) subset += std::to_string(level + 1) + "+";
    }
    subset += "4";
    landscape.add_row(
        {subset,
         common::strf("%.2f",
                      common::seconds_to_days(r.subset_wallclocks[mask]))});
  }
  landscape.print();
  std::printf(
      "\n  Under the analytic model, dropping the cheapest levels can win\n"
      "  slightly: their frequent checkpoints are re-taken inside every\n"
      "  higher-level rollback (Formula (18)'s redo term).\n");
  return 0;
}
