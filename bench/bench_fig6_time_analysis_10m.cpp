// Figure 6: same time analysis as Figure 5 but with Te = 10m core-days.
// Paper: the gain of ML(opt-scale) over SL(ori-scale) shrinks to 4.3-42.3%
// because productive time dominates the longer run.
#include "bench_util.h"

namespace {

using namespace mlcr;

}  // namespace

int main() {
  svc::SweepEngine engine;
  bench::print_header(
      "Figure 6 — time analysis (Te=10m core-days, N_star=1m cores)");

  common::Table table({"case", "solution", "N used", "productive(d)",
                       "checkpoint(d)", "restart(d)", "rollback(d)",
                       "wall-clock(d)"});
  std::vector<double> improvement_sl_ori, improvement_ml_ori;

  for (const auto& failure_case : exp::paper_failure_cases()) {
    const auto cfg = exp::make_fti_system(1e7, failure_case);
    double ml_opt_wct = 0.0;
    for (const auto solution : opt::all_solutions()) {
      const auto eval = bench::evaluate(engine, cfg, solution);
      const auto portions = eval.simulated.mean_portions();
      const double wct = eval.simulated.wallclock.mean();
      table.add_row(
          {failure_case.name, opt::to_string(solution),
           common::format_count(eval.report.plan().scale),
           common::strf("%.2f", common::seconds_to_days(portions.productive)),
           common::strf("%.2f", common::seconds_to_days(portions.checkpoint)),
           common::strf("%.2f", common::seconds_to_days(portions.restart)),
           common::strf("%.2f", common::seconds_to_days(portions.rollback)),
           common::strf("%.2f", common::seconds_to_days(wct))});
      if (solution == opt::Solution::kMultilevelOptScale) ml_opt_wct = wct;
      if (solution == opt::Solution::kSingleLevelOriScale) {
        improvement_sl_ori.push_back(100.0 * (1.0 - ml_opt_wct / wct));
      }
      if (solution == opt::Solution::kMultilevelOriScale) {
        improvement_ml_ori.push_back(100.0 * (1.0 - ml_opt_wct / wct));
      }
    }
  }
  table.print();

  auto band = [](const std::vector<double>& v) {
    double lo = v.front(), hi = v.front();
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return std::pair{lo, hi};
  };
  const auto [sl_lo, sl_hi] = band(improvement_sl_ori);
  const auto [ml_lo, ml_hi] = band(improvement_ml_ori);
  // The paper quotes "4.3-42.3%" for Te=10m; the text is ambiguous between
  // SL(ori-scale) and ML(ori-scale) as the comparator, so both are printed.
  std::printf("\n  ML(opt-scale) reduction vs SL(ori-scale): %.1f-%.1f%%\n",
              sl_lo, sl_hi);
  std::printf("  ML(opt-scale) reduction vs ML(ori-scale): %.1f-%.1f%%"
              " (paper: 4.3-42.3%% at Te=10m, comparator ambiguous)\n",
              ml_lo, ml_hi);
  return 0;
}
