// Table IV: the constant-PFS-cost regime ("Blue Waters"-style file system):
// per-level checkpoint costs 50/100/200/2000 s, Te = 2m core-days,
// N_star = 1m cores.  The paper's table has two blocks of four solutions; we
// interpret them as two recovery-cost settings (R = C and R = C/2), an
// assumption recorded in EXPERIMENTS.md.
//
// Paper reference values, block 1 (wall-clock days / efficiency):
//   ML(opt-scale): 14.6/0.158  12.8/0.173  11.1/0.193
//   SL(opt-scale): 37.3/0.092  23.2/0.123  17.2/0.146
//   ML(ori-scale): 15.4/0.130  13.4/0.150  11.7/0.171
//   SL(ori-scale):  890/0.002   892/0.002   890/0.002
#include "bench_util.h"

int main() {
  using namespace mlcr;
  svc::SweepEngine engine;

  const double paper_wct[2][4][3] = {
      {{14.6, 12.8, 11.1}, {37.3, 23.2, 17.2}, {15.4, 13.4, 11.7},
       {890, 892, 890}},
      {{13.1, 11.7, 10.6}, {30.6, 20.4, 16.0}, {14.2, 12.2, 11.4},
       {893, 890, 896}}};

  int block = 0;
  for (const double recovery_factor : {1.0, 0.5}) {
    bench::print_header(common::strf(
        "Table IV block %d — constant PFS cost, R = %.1f x C "
        "(Te=2m core-days)",
        block + 1, recovery_factor));
    common::Table table({"solution", "case", "WCT(d) paper", "WCT(d) ours",
                         "eff paper?", "eff ours", "N used"});
    const auto cases = exp::table4_failure_cases();
    int solution_index = 0;
    for (const auto solution : opt::all_solutions()) {
      for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto cfg =
            exp::make_constant_pfs_system(cases[i], recovery_factor);
        const auto eval = bench::evaluate(engine, cfg, solution);
        const double wct_days =
            common::seconds_to_days(eval.simulated.wallclock.mean());
        table.add_row(
            {opt::to_string(solution), cases[i].name,
             common::strf("%.1f", paper_wct[block][solution_index][i]),
             common::strf("%.1f", wct_days), "(see paper)",
             common::strf("%.3f", eval.simulated.efficiency.mean()),
             common::format_count(eval.report.plan().scale)});
      }
      ++solution_index;
    }
    table.print();
    ++block;
  }
  // System availability (paper: "improves the system availability by
  // 6-16% in comparison with using up all the available resources"): the
  // fraction of the machine the optimized plan leaves free.
  bench::print_header("Table IV — availability improvement of ML(opt-scale)");
  for (const auto& failure_case : exp::table4_failure_cases()) {
    const auto cfg = exp::make_constant_pfs_system(failure_case);
    const auto report = *engine.plan_one(
        svc::PlanRequest{cfg, opt::Solution::kMultilevelOptScale, {}, {}});
    std::printf("  %-10s freed cores: %.1f%% (paper: 6-16%%)\n",
                failure_case.name.c_str(),
                100.0 * (1.0 - report.plan().scale / 1e6));
  }
  std::printf(
      "\n  Paper claims: ML(opt-scale) beats ML(ori-scale) by 3.6-6.5%% WCT\n"
      "  and 12.9-22.1%% efficiency; optimized scales 860k-940k cores.\n");
  return 0;
}
