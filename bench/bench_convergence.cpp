// Convergence study (Section IV-B tail + Section III-C.2):
//  * Algorithm 1 outer iterations at delta = 1e-12 for the Table IV cases
//    (paper: 8, 7 and 15 iterations);
//  * the single-level fixed-point iterations for Figure 3 (paper: 30-40
//    iterations at threshold 1e-6 with x0 = 100,000).
#include "bench_util.h"

#include "opt/single_level.h"

int main() {
  using namespace mlcr;
  bench::print_header("Algorithm 1 convergence (delta = 1e-12)");

  common::Table outer({"system", "case", "outer iters", "inner iters total",
                       "converged"});
  for (const auto& failure_case : exp::table4_failure_cases()) {
    const auto cfg = exp::make_constant_pfs_system(failure_case);
    opt::Algorithm1Options options;
    options.delta = 1e-12;
    const auto r = opt::optimize_multilevel(cfg, options);
    outer.add_row({"Table IV (const PFS)", failure_case.name,
                   common::strf("%d", r.outer_iterations),
                   common::strf("%d", r.inner_iterations),
                   r.converged ? "yes" : "no"});
  }
  for (const auto& failure_case : exp::paper_failure_cases()) {
    const auto cfg = exp::make_fti_system(3e6, failure_case);
    opt::Algorithm1Options options;
    options.delta = 1e-12;
    const auto r = opt::optimize_multilevel(cfg, options);
    outer.add_row({"Figure 5 (FTI fit)", failure_case.name,
                   common::strf("%d", r.outer_iterations),
                   common::strf("%d", r.inner_iterations),
                   r.converged ? "yes" : "no"});
  }
  outer.print();
  std::printf("  Paper: 8 / 7 / 15 outer iterations on its three cases.\n");

  bench::print_header(
      "Single-level fixed point (Figure 3; threshold 1e-6, x0 = 100,000)");
  common::Table inner({"cost model", "iterations", "x*", "N*"});
  for (bool linear : {false, true}) {
    const auto cfg = exp::make_fig3_system(linear);
    const auto s = opt::solve_single_level(cfg, exp::fig3_mu());
    inner.add_row({linear ? "5 + 0.005N" : "constant 5s",
                   common::strf("%d", s.iterations),
                   common::strf("%.1f", s.x), common::format_count(s.n)});
  }
  inner.print();
  std::printf("  Paper: 30-40 iterations.\n");
  return 0;
}
